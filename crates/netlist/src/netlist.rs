//! Gate-level netlist data model, validation, and conversion to/from
//! AIGs. This is the substrate standing in for the ICCAD'17 contest
//! netlists the paper evaluates on.

use eco_aig::{Aig, AigLit, AigNode};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a net (wire) in a [`Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Creates a net id from a dense index (pair with
    /// [`Netlist::num_nets`] for iteration).
    pub fn from_index(index: usize) -> NetId {
        NetId(index as u32)
    }

    /// Dense index of this net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Supported primitive gate kinds (multi-input where applicable).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum GateKind {
    /// Multi-input AND.
    And,
    /// Multi-input OR.
    Or,
    /// Multi-input NAND.
    Nand,
    /// Multi-input NOR.
    Nor,
    /// Multi-input XOR (odd parity).
    Xor,
    /// Multi-input XNOR (even parity).
    Xnor,
    /// Single-input buffer.
    Buf,
    /// Single-input inverter.
    Not,
    /// Constant 0 driver (no inputs).
    Const0,
    /// Constant 1 driver (no inputs).
    Const1,
}

impl GateKind {
    /// The Verilog primitive name.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
        }
    }

    /// Parses a primitive name.
    pub fn from_name(name: &str) -> Option<GateKind> {
        Some(match name {
            "and" => GateKind::And,
            "or" => GateKind::Or,
            "nand" => GateKind::Nand,
            "nor" => GateKind::Nor,
            "xor" => GateKind::Xor,
            "xnor" => GateKind::Xnor,
            "buf" => GateKind::Buf,
            "not" => GateKind::Not,
            "const0" => GateKind::Const0,
            "const1" => GateKind::Const1,
            _ => return None,
        })
    }
}

/// One gate instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    /// Primitive kind.
    pub kind: GateKind,
    /// Instance name.
    pub name: String,
    /// The single driven net.
    pub output: NetId,
    /// Input nets in connection order.
    pub inputs: Vec<NetId>,
}

/// Error raised by netlist validation or AIG conversion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A net is driven by more than one gate (or a gate drives an input).
    MultipleDrivers(String),
    /// A non-input net has no driver.
    Undriven(String),
    /// The gate graph contains a combinational cycle through this net.
    CombinationalCycle(String),
    /// A gate has the wrong number of connections for its kind.
    BadArity {
        /// The offending gate instance.
        gate: String,
        /// What was found.
        found: usize,
    },
    /// A referenced net name does not exist.
    UnknownNet(String),
    /// A net id is out of range for this netlist (a [`NetId`] from
    /// another netlist, or a stale index).
    InvalidNetId(usize),
    /// A net is declared as a primary input more than once.
    DuplicateInput(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers(n) => write!(f, "net {n:?} has multiple drivers"),
            NetlistError::Undriven(n) => write!(f, "net {n:?} has no driver"),
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through net {n:?}")
            }
            NetlistError::BadArity { gate, found } => {
                write!(f, "gate {gate:?} has invalid connection count {found}")
            }
            NetlistError::UnknownNet(n) => write!(f, "unknown net {n:?}"),
            NetlistError::InvalidNetId(i) => write!(f, "net id {i} is out of range"),
            NetlistError::DuplicateInput(n) => {
                write!(f, "net {n:?} declared as input more than once")
            }
        }
    }
}

impl Error for NetlistError {}

/// A combinational gate-level netlist with named nets.
///
/// # Examples
///
/// ```
/// use eco_netlist::{GateKind, Netlist};
///
/// let mut nl = Netlist::new("half_adder");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let s = nl.add_net("s");
/// let c = nl.add_net("c");
/// nl.add_gate(GateKind::Xor, "g0", s, vec![a, b]);
/// nl.add_gate(GateKind::And, "g1", c, vec![a, b]);
/// nl.mark_output(s);
/// nl.mark_output(c);
/// let conv = nl.to_aig().expect("valid netlist");
/// assert_eq!(conv.aig.eval(&[true, true]), vec![false, true]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    name: String,
    net_names: Vec<String>,
    net_ids: HashMap<String, NetId>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    gates: Vec<Gate>,
}

/// Result of [`Netlist::to_aig`]: the AIG plus net correspondence.
#[derive(Clone, Debug)]
pub struct AigConversion {
    /// The converted AIG; its input order matches the netlist's input
    /// order, its output order the netlist's output order.
    pub aig: Aig,
    /// AIG literal for each net (indexed by [`NetId`]).
    pub net_lits: Vec<AigLit>,
}

impl Netlist {
    /// Creates an empty netlist with a module name.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds (or finds) a net by name.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        if let Some(&id) = self.net_ids.get(&name) {
            return id;
        }
        let id = NetId(self.net_names.len() as u32);
        self.net_ids.insert(name.clone(), id);
        self.net_names.push(name);
        id
    }

    /// Adds a net and marks it as a primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.inputs.push(id);
        id
    }

    /// Marks an existing net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Adds a gate instance driving `output` from `inputs`.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        name: impl Into<String>,
        output: NetId,
        inputs: Vec<NetId>,
    ) {
        self.gates.push(Gate {
            kind,
            name: name.into(),
            output,
            inputs,
        });
    }

    /// Looks up a net id by name.
    pub fn net(&self, name: &str) -> Option<NetId> {
        self.net_ids.get(name).copied()
    }

    /// The name of a net.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.index()]
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// The primary inputs in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The primary outputs in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The gate instances.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Validates net-id ranges, drivers, duplicate input declarations,
    /// and arities (cycles are detected during [`Netlist::to_aig`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let num_nets = self.net_names.len();
        let in_range = |id: NetId| -> Result<(), NetlistError> {
            if id.index() >= num_nets {
                return Err(NetlistError::InvalidNetId(id.index()));
            }
            Ok(())
        };
        for id in self.inputs.iter().chain(self.outputs.iter()) {
            in_range(*id)?;
        }
        for g in &self.gates {
            in_range(g.output)?;
            for &i in &g.inputs {
                in_range(i)?;
            }
        }
        let mut driver: Vec<Option<usize>> = vec![None; num_nets];
        for i in &self.inputs {
            if driver[i.index()].is_some() {
                return Err(NetlistError::DuplicateInput(self.net_name(*i).to_string()));
            }
            driver[i.index()] = Some(usize::MAX);
        }
        for (gi, g) in self.gates.iter().enumerate() {
            let arity_ok = match g.kind {
                GateKind::Buf | GateKind::Not => g.inputs.len() == 1,
                GateKind::Const0 | GateKind::Const1 => g.inputs.is_empty(),
                GateKind::Xor | GateKind::Xnor => !g.inputs.is_empty(),
                _ => !g.inputs.is_empty(),
            };
            if !arity_ok {
                return Err(NetlistError::BadArity {
                    gate: g.name.clone(),
                    found: g.inputs.len(),
                });
            }
            if driver[g.output.index()].is_some() {
                return Err(NetlistError::MultipleDrivers(
                    self.net_name(g.output).to_string(),
                ));
            }
            driver[g.output.index()] = Some(gi);
        }
        for (idx, d) in driver.iter().enumerate() {
            if d.is_none() {
                // A dangling net used nowhere is tolerated; a net that is
                // read must be driven.
                let read = self
                    .gates
                    .iter()
                    .any(|g| g.inputs.contains(&NetId(idx as u32)))
                    || self.outputs.contains(&NetId(idx as u32));
                if read {
                    return Err(NetlistError::Undriven(self.net_names[idx].clone()));
                }
            }
        }
        Ok(())
    }

    /// Converts to an AIG (inputs/outputs in declaration order).
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] on validation failure or a
    /// combinational cycle.
    pub fn to_aig(&self) -> Result<AigConversion, NetlistError> {
        self.validate()?;
        let mut aig = Aig::new();
        let mut net_lits: Vec<Option<AigLit>> = vec![None; self.net_names.len()];
        for &i in &self.inputs {
            net_lits[i.index()] = Some(aig.add_input());
        }
        // gate index driving each net
        let mut driver: Vec<Option<usize>> = vec![None; self.net_names.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            driver[g.output.index()] = Some(gi);
        }
        // Iterative DFS over gates.
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            Fresh,
            Busy,
            Done,
        }
        let mut state = vec![State::Fresh; self.gates.len()];
        let roots: Vec<usize> = self
            .outputs
            .iter()
            .filter_map(|o| driver[o.index()])
            .chain((0..self.gates.len()).collect::<Vec<_>>())
            .collect();
        for root in roots {
            if state[root] == State::Done {
                continue;
            }
            let mut stack: Vec<(usize, bool)> = vec![(root, false)];
            while let Some((gi, expanded)) = stack.pop() {
                if state[gi] == State::Done {
                    continue;
                }
                let g = &self.gates[gi];
                if !expanded {
                    if state[gi] == State::Busy {
                        return Err(NetlistError::CombinationalCycle(
                            self.net_name(g.output).to_string(),
                        ));
                    }
                    state[gi] = State::Busy;
                    stack.push((gi, true));
                    for &inp in &g.inputs {
                        if let Some(d) = driver[inp.index()] {
                            if state[d] == State::Busy {
                                return Err(NetlistError::CombinationalCycle(
                                    self.net_name(inp).to_string(),
                                ));
                            }
                            if state[d] == State::Fresh {
                                stack.push((d, false));
                            }
                        }
                    }
                } else {
                    let ins: Vec<AigLit> = g
                        .inputs
                        .iter()
                        .map(|i| net_lits[i.index()].expect("input computed"))
                        .collect();
                    let lit = match g.kind {
                        GateKind::And => aig.and_many(&ins),
                        GateKind::Nand => !aig.and_many(&ins),
                        GateKind::Or => aig.or_many(&ins),
                        GateKind::Nor => !aig.or_many(&ins),
                        GateKind::Xor => ins.iter().fold(AigLit::FALSE, |acc, &l| aig.xor(acc, l)),
                        GateKind::Xnor => {
                            !ins.iter().fold(AigLit::FALSE, |acc, &l| aig.xor(acc, l))
                        }
                        GateKind::Buf => ins[0],
                        GateKind::Not => !ins[0],
                        GateKind::Const0 => AigLit::FALSE,
                        GateKind::Const1 => AigLit::TRUE,
                    };
                    net_lits[g.output.index()] = Some(lit);
                    state[gi] = State::Done;
                }
            }
        }
        for &o in &self.outputs {
            let lit = net_lits[o.index()].expect("outputs validated as driven");
            aig.add_output(lit);
        }
        let net_lits: Vec<AigLit> = net_lits
            .into_iter()
            .map(|l| l.unwrap_or(AigLit::FALSE))
            .collect();
        Ok(AigConversion { aig, net_lits })
    }

    /// Builds a netlist from an AIG using `and`/`not` primitives, with
    /// generated net names (`pi<i>`, `po<i>`, `n<i>`).
    pub fn from_aig(name: impl Into<String>, aig: &Aig) -> Netlist {
        let mut nl = Netlist::new(name);
        let mut lit_net: HashMap<u32, NetId> = HashMap::new();
        let const0 = nl.add_net("const0_net");
        nl.add_gate(GateKind::Const0, "gconst0", const0, vec![]);
        lit_net.insert(AigLit::FALSE.code(), const0);
        for (i, &n) in aig.inputs().iter().enumerate() {
            let id = nl.add_input(format!("pi{i}"));
            lit_net.insert(n.lit().code(), id);
        }
        let mut inverter_count = 0usize;
        let mut net_of =
            |nl: &mut Netlist, lit: AigLit, lit_net: &mut HashMap<u32, NetId>| -> NetId {
                if let Some(&id) = lit_net.get(&lit.code()) {
                    return id;
                }
                // Must be a complemented known literal: create an inverter.
                let base = *lit_net.get(&(!lit).code()).expect("base literal exists");
                let id = nl.add_net(format!("inv{inverter_count}"));
                inverter_count += 1;
                nl.add_gate(
                    GateKind::Not,
                    format!("ginv{}", inverter_count),
                    id,
                    vec![base],
                );
                lit_net.insert(lit.code(), id);
                id
            };
        for id in aig.iter_nodes() {
            if let AigNode::And { f0, f1 } = aig.node(id) {
                let a = net_of(&mut nl, f0, &mut lit_net);
                let b = net_of(&mut nl, f1, &mut lit_net);
                let out = nl.add_net(format!("n{}", id.index()));
                nl.add_gate(GateKind::And, format!("g{}", id.index()), out, vec![a, b]);
                lit_net.insert(id.lit().code(), out);
            }
        }
        for (i, &o) in aig.outputs().iter().enumerate() {
            let src = net_of(&mut nl, o, &mut lit_net);
            let po = nl.add_net(format!("po{i}"));
            nl.add_gate(GateKind::Buf, format!("gpo{i}"), po, vec![src]);
            nl.mark_output(po);
        }
        nl
    }

    /// Serializes as a structural-Verilog module in the contest style.
    pub fn to_verilog(&self) -> String {
        let mut ports: Vec<&str> = Vec::new();
        for &i in &self.inputs {
            ports.push(self.net_name(i));
        }
        for &o in &self.outputs {
            ports.push(self.net_name(o));
        }
        let mut out = format!("module {} ({});\n", self.name, ports.join(", "));
        if !self.inputs.is_empty() {
            let names: Vec<&str> = self.inputs.iter().map(|&i| self.net_name(i)).collect();
            out.push_str(&format!("  input {};\n", names.join(", ")));
        }
        if !self.outputs.is_empty() {
            let names: Vec<&str> = self.outputs.iter().map(|&o| self.net_name(o)).collect();
            out.push_str(&format!("  output {};\n", names.join(", ")));
        }
        let port_set: std::collections::HashSet<NetId> = self
            .inputs
            .iter()
            .chain(self.outputs.iter())
            .copied()
            .collect();
        let is_const_alias = |name: &str| name == "1'b0" || name == "1'b1";
        let wires: Vec<&str> = (0..self.net_names.len())
            .map(|i| NetId(i as u32))
            .filter(|id| !port_set.contains(id))
            .map(|id| self.net_name(id))
            .filter(|n| !is_const_alias(n))
            .collect();
        if !wires.is_empty() {
            out.push_str(&format!("  wire {};\n", wires.join(", ")));
        }
        for g in &self.gates {
            match g.kind {
                // Constant drivers of the literal alias nets `1'b0`/`1'b1`
                // are implicit in the emitted text; other constant nets get
                // an explicit buf from the literal.
                GateKind::Const0 => {
                    if !is_const_alias(self.net_name(g.output)) {
                        out.push_str(&format!(
                            "  buf {} ({}, 1'b0);\n",
                            g.name,
                            self.net_name(g.output)
                        ));
                    }
                }
                GateKind::Const1 => {
                    if !is_const_alias(self.net_name(g.output)) {
                        out.push_str(&format!(
                            "  buf {} ({}, 1'b1);\n",
                            g.name,
                            self.net_name(g.output)
                        ));
                    }
                }
                _ => {
                    let mut conns = vec![self.net_name(g.output)];
                    conns.extend(g.inputs.iter().map(|&i| self.net_name(i)));
                    out.push_str(&format!(
                        "  {} {} ({});\n",
                        g.kind.name(),
                        g.name,
                        conns.join(", ")
                    ));
                }
            }
        }
        out.push_str("endmodule\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let s = nl.add_net("s");
        let cout = nl.add_net("cout");
        let t = nl.add_net("t");
        nl.add_gate(GateKind::Xor, "g0", t, vec![a, b]);
        nl.add_gate(GateKind::Xor, "g1", s, vec![t, cin]);
        let p = nl.add_net("p");
        let q = nl.add_net("q");
        nl.add_gate(GateKind::And, "g2", p, vec![a, b]);
        nl.add_gate(GateKind::And, "g3", q, vec![t, cin]);
        nl.add_gate(GateKind::Or, "g4", cout, vec![p, q]);
        nl.mark_output(s);
        nl.mark_output(cout);
        nl
    }

    #[test]
    fn full_adder_truth() {
        let conv = full_adder().to_aig().expect("valid");
        for mask in 0..8u32 {
            let bits = [mask & 1 == 1, mask >> 1 & 1 == 1, mask >> 2 & 1 == 1];
            let total = bits.iter().filter(|&&x| x).count();
            let out = conv.aig.eval(&bits);
            assert_eq!(out[0], total % 2 == 1, "sum {mask}");
            assert_eq!(out[1], total >= 2, "carry {mask}");
        }
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let w = nl.add_net("w");
        nl.add_gate(GateKind::Buf, "g0", w, vec![a]);
        nl.add_gate(GateKind::Not, "g1", w, vec![a]);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::MultipleDrivers(_))
        ));
    }

    #[test]
    fn undriven_read_net_rejected() {
        let mut nl = Netlist::new("bad");
        let w = nl.add_net("w");
        nl.mark_output(w);
        assert!(matches!(nl.validate(), Err(NetlistError::Undriven(_))));
    }

    #[test]
    fn cycle_detected() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::And, "g0", x, vec![a, y]);
        nl.add_gate(GateKind::Not, "g1", y, vec![x]);
        nl.mark_output(x);
        assert!(matches!(
            nl.to_aig(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let w = nl.add_net("w");
        nl.add_gate(GateKind::Not, "g0", w, vec![a, b]);
        assert!(matches!(nl.validate(), Err(NetlistError::BadArity { .. })));
    }

    #[test]
    fn constants_and_multi_input_gates() {
        let mut nl = Netlist::new("k");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let one = nl.add_net("one");
        nl.add_gate(GateKind::Const1, "g0", one, vec![]);
        let n3 = nl.add_net("n3");
        nl.add_gate(GateKind::Nand, "g1", n3, vec![a, b, c]);
        let x3 = nl.add_net("x3");
        nl.add_gate(GateKind::Xnor, "g2", x3, vec![a, b, c]);
        let o = nl.add_net("o");
        nl.add_gate(GateKind::And, "g3", o, vec![n3, x3, one]);
        nl.mark_output(o);
        let conv = nl.to_aig().expect("valid");
        for mask in 0..8u32 {
            let bits = [mask & 1 == 1, mask >> 1 & 1 == 1, mask >> 2 & 1 == 1];
            let nand = !(bits[0] && bits[1] && bits[2]);
            let xnor = bits.iter().filter(|&&x| x).count() % 2 == 0;
            assert_eq!(conv.aig.eval(&bits)[0], nand && xnor);
        }
    }

    #[test]
    fn from_aig_roundtrip() {
        let conv = full_adder().to_aig().expect("valid");
        let nl2 = Netlist::from_aig("fa2", &conv.aig);
        let conv2 = nl2.to_aig().expect("valid roundtrip");
        for mask in 0..8u32 {
            let bits = [mask & 1 == 1, mask >> 1 & 1 == 1, mask >> 2 & 1 == 1];
            assert_eq!(conv.aig.eval(&bits), conv2.aig.eval(&bits));
        }
    }

    #[test]
    fn verilog_emission_mentions_everything() {
        let nl = full_adder();
        let v = nl.to_verilog();
        assert!(v.contains("module fa"));
        assert!(v.contains("input a, b, cin;"));
        assert!(v.contains("output s, cout;"));
        assert!(v.contains("xor g0 (t, a, b);"));
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn add_net_is_idempotent() {
        let mut nl = Netlist::new("m");
        let a = nl.add_net("a");
        let a2 = nl.add_net("a");
        assert_eq!(a, a2);
        assert_eq!(nl.num_nets(), 1);
    }
}
