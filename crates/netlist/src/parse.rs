//! Parser for the structural-Verilog subset used by the ICCAD'17
//! contest benchmarks: one module of primitive gate instances, plus
//! `// eco_target <net>` directives marking rectification points.

use crate::netlist::{GateKind, Netlist};
use std::error::Error;
use std::fmt;

/// Error from [`parse_verilog`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseVerilogError {
    /// 1-based line of the offending token (best effort).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verilog parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseVerilogError {}

/// Result of parsing: the netlist and any `eco_target` directives found
/// (net names, in file order).
#[derive(Clone, Debug)]
pub struct ParsedModule {
    /// The parsed netlist.
    pub netlist: Netlist,
    /// Net names marked as ECO targets via `// eco_target <net>`.
    pub targets: Vec<String>,
}

#[derive(Clone, Debug, PartialEq)]
struct Token {
    text: String,
    line: usize,
}

/// Token stream plus `// eco_target` directives with their line numbers.
type TokenStream = (Vec<Token>, Vec<(usize, String)>);

fn tokenize(src: &str) -> Result<TokenStream, ParseVerilogError> {
    let mut tokens = Vec::new();
    let mut directives = Vec::new();
    let mut chars = src.char_indices().peekable();
    let mut line = 1usize;
    while let Some((_, c)) = chars.next() {
        match c {
            '\n' => line += 1,
            c if c.is_whitespace() => {}
            '/' => match chars.peek() {
                Some(&(_, '/')) => {
                    chars.next();
                    let mut comment = String::new();
                    for (_, c2) in chars.by_ref() {
                        if c2 == '\n' {
                            line += 1;
                            break;
                        }
                        comment.push(c2);
                    }
                    let comment = comment.trim();
                    if let Some(rest) = comment.strip_prefix("eco_target") {
                        directives.push((line, rest.trim().to_string()));
                    }
                }
                Some(&(_, '*')) => {
                    chars.next();
                    let mut prev = ' ';
                    for (_, c2) in chars.by_ref() {
                        if c2 == '\n' {
                            line += 1;
                        }
                        if prev == '*' && c2 == '/' {
                            break;
                        }
                        prev = c2;
                    }
                }
                _ => {
                    return Err(ParseVerilogError {
                        line,
                        message: "unexpected '/'".to_string(),
                    })
                }
            },
            '(' | ')' | ',' | ';' => {
                tokens.push(Token {
                    text: c.to_string(),
                    line,
                });
            }
            c if c.is_alphanumeric()
                || c == '_'
                || c == '\''
                || c == '\\'
                || c == '['
                || c == ']'
                || c == '.' =>
            {
                let mut word = String::new();
                word.push(c);
                while let Some(&(_, c2)) = chars.peek() {
                    if c2.is_alphanumeric()
                        || c2 == '_'
                        || c2 == '\''
                        || c2 == '['
                        || c2 == ']'
                        || c2 == '.'
                    {
                        word.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token { text: word, line });
            }
            other => {
                return Err(ParseVerilogError {
                    line,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok((tokens, directives))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, ParseVerilogError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or(ParseVerilogError {
                line: self.tokens.last().map_or(0, |t| t.line),
                message: "unexpected end of file".to_string(),
            })?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, text: &str) -> Result<Token, ParseVerilogError> {
        let t = self.next()?;
        if t.text != text {
            return Err(ParseVerilogError {
                line: t.line,
                message: format!("expected {text:?}, found {:?}", t.text),
            });
        }
        Ok(t)
    }

    fn name_list(&mut self) -> Result<Vec<String>, ParseVerilogError> {
        let mut names = Vec::new();
        loop {
            let t = self.next()?;
            names.push(t.text);
            let sep = self.next()?;
            match sep.text.as_str() {
                "," => continue,
                ";" => break,
                other => {
                    return Err(ParseVerilogError {
                        line: sep.line,
                        message: format!("expected ',' or ';', found {other:?}"),
                    })
                }
            }
        }
        Ok(names)
    }
}

/// Resolves a connection token to a net id, mapping the constants
/// `1'b0`/`1'b1` to dedicated constant-driven nets.
fn conn_net(nl: &mut Netlist, token: &str) -> crate::netlist::NetId {
    match token {
        "1'b0" | "1'h0" => {
            // The net is literally named `1'b0`, so `to_verilog` prints it
            // back verbatim and the driver gate is implicit.
            let id = nl.add_net("1'b0");
            if !nl.gates().iter().any(|g| g.output == id) {
                nl.add_gate(GateKind::Const0, "__gconst0", id, vec![]);
            }
            id
        }
        "1'b1" | "1'h1" => {
            let id = nl.add_net("1'b1");
            if !nl.gates().iter().any(|g| g.output == id) {
                nl.add_gate(GateKind::Const1, "__gconst1", id, vec![]);
            }
            id
        }
        name => nl.add_net(name),
    }
}

/// Parses a single structural-Verilog module.
///
/// Supported constructs: `module name (ports);`, `input`/`output`/`wire`
/// declarations, primitive instances
/// (`and`/`or`/`nand`/`nor`/`xor`/`xnor`/`buf`/`not`), the constants
/// `1'b0`/`1'b1` as connections, comments, and `// eco_target <net>`
/// directives.
///
/// # Errors
///
/// Returns [`ParseVerilogError`] on any unsupported or malformed
/// construct.
///
/// # Examples
///
/// ```
/// use eco_netlist::parse_verilog;
///
/// let src = "
/// module top (a, b, y);
///   input a, b;
///   output y;
///   wire w;
///   // eco_target w
///   and g1 (w, a, b);
///   not g2 (y, w);
/// endmodule";
/// let parsed = parse_verilog(src)?;
/// assert_eq!(parsed.targets, vec!["w"]);
/// assert_eq!(parsed.netlist.gates().len(), 2);
/// # Ok::<(), eco_netlist::ParseVerilogError>(())
/// ```
pub fn parse_verilog(src: &str) -> Result<ParsedModule, ParseVerilogError> {
    let (tokens, directives) = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.expect("module")?;
    let name = p.next()?;
    let mut nl = Netlist::new(name.text);
    // Port list (names recorded; direction comes from declarations).
    p.expect("(")?;
    loop {
        let t = p.next()?;
        match t.text.as_str() {
            ")" => break,
            "," => continue,
            _ => {
                nl.add_net(t.text);
            }
        }
    }
    p.expect(";")?;
    let mut outputs: Vec<String> = Vec::new();
    let mut declared_inputs: std::collections::HashSet<String> = std::collections::HashSet::new();
    loop {
        let t = p.peek().cloned().ok_or(ParseVerilogError {
            line: 0,
            message: "missing endmodule".to_string(),
        })?;
        match t.text.as_str() {
            "endmodule" => {
                p.next()?;
                break;
            }
            "input" => {
                p.next()?;
                for n in p.name_list()? {
                    if !declared_inputs.insert(n.clone()) {
                        return Err(ParseVerilogError {
                            line: t.line,
                            message: format!("net {n:?} declared 'input' more than once"),
                        });
                    }
                    nl.add_input(n);
                }
            }
            "output" => {
                p.next()?;
                for n in p.name_list()? {
                    if outputs.contains(&n) {
                        return Err(ParseVerilogError {
                            line: t.line,
                            message: format!("net {n:?} declared 'output' more than once"),
                        });
                    }
                    outputs.push(n);
                }
            }
            "wire" => {
                p.next()?;
                for n in p.name_list()? {
                    nl.add_net(n);
                }
            }
            prim => {
                let kind = GateKind::from_name(prim).ok_or(ParseVerilogError {
                    line: t.line,
                    message: format!("unsupported primitive or keyword {prim:?}"),
                })?;
                p.next()?;
                // Optional instance name.
                let mut inst = format!("g_auto_{}", p.pos);
                if let Some(tok) = p.peek() {
                    if tok.text != "(" {
                        inst = p.next()?.text;
                    }
                }
                p.expect("(")?;
                let mut conns: Vec<String> = Vec::new();
                loop {
                    let tok = p.next()?;
                    match tok.text.as_str() {
                        ")" => break,
                        "," => continue,
                        _ => conns.push(tok.text),
                    }
                }
                p.expect(";")?;
                if conns.is_empty() {
                    return Err(ParseVerilogError {
                        line: t.line,
                        message: format!("gate {inst:?} has no connections"),
                    });
                }
                let out = conn_net(&mut nl, &conns[0]);
                let ins: Vec<_> = conns[1..].iter().map(|c| conn_net(&mut nl, c)).collect();
                // `buf g (w, 1'b0)` is how constants appear: rewrite to a
                // constant driver.
                nl.add_gate(kind, inst, out, ins);
            }
        }
    }
    for o in outputs {
        if declared_inputs.contains(&o) {
            return Err(ParseVerilogError {
                line: 0,
                message: format!("net {o:?} declared both 'input' and 'output'"),
            });
        }
        let id = nl.net(&o).ok_or(ParseVerilogError {
            line: 0,
            message: format!("output {o:?} never declared"),
        })?;
        nl.mark_output(id);
    }
    let targets = directives.into_iter().map(|(_, n)| n).collect();
    Ok(ParsedModule {
        netlist: nl,
        targets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
// A sample contest-style module.
module top (a, b, c, y, z);
  input a, b, c;
  output y, z;
  wire w1, w2;
  and g1 (w1, a, b);
  // eco_target w1
  xor g2 (w2, w1, c);
  not g3 (y, w2);
  buf g4 (z, 1'b1);
endmodule
";

    #[test]
    fn parses_sample_module() {
        let parsed = parse_verilog(SAMPLE).expect("parse");
        let nl = &parsed.netlist;
        assert_eq!(nl.name(), "top");
        assert_eq!(nl.inputs().len(), 3);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(parsed.targets, vec!["w1"]);
        let conv = nl.to_aig().expect("valid");
        for mask in 0..8u32 {
            let bits = [mask & 1 == 1, mask >> 1 & 1 == 1, mask >> 2 & 1 == 1];
            let w1 = bits[0] && bits[1];
            let w2 = w1 ^ bits[2];
            assert_eq!(conv.aig.eval(&bits), vec![!w2, true]);
        }
    }

    #[test]
    fn roundtrip_through_to_verilog() {
        let parsed = parse_verilog(SAMPLE).expect("parse");
        let text = parsed.netlist.to_verilog();
        let again = parse_verilog(&text).expect("reparse");
        let a = parsed.netlist.to_aig().expect("valid").aig;
        let b = again.netlist.to_aig().expect("valid").aig;
        for mask in 0..8u32 {
            let bits = [mask & 1 == 1, mask >> 1 & 1 == 1, mask >> 2 & 1 == 1];
            assert_eq!(a.eval(&bits), b.eval(&bits));
        }
    }

    #[test]
    fn block_comments_are_skipped() {
        let src = "module m (a, y); /* multi\nline */ input a; output y; buf g (y, a); endmodule";
        let parsed = parse_verilog(src).expect("parse");
        assert_eq!(parsed.netlist.gates().len(), 1);
    }

    #[test]
    fn unnamed_instances_get_generated_names() {
        let src = "module m (a, y); input a; output y; not (y, a); endmodule";
        let parsed = parse_verilog(src).expect("parse");
        assert_eq!(parsed.netlist.gates().len(), 1);
        assert!(parsed.netlist.gates()[0].name.starts_with("g_auto"));
    }

    #[test]
    fn unsupported_primitive_is_an_error() {
        let src = "module m (a, y); input a; output y; dff g (y, a); endmodule";
        let e = parse_verilog(src).unwrap_err();
        assert!(e.message.contains("unsupported"));
    }

    #[test]
    fn undeclared_output_is_an_error() {
        let src = "module m (a); input a; output y; endmodule";
        assert!(parse_verilog(src).is_err());
    }

    #[test]
    fn missing_endmodule_is_an_error() {
        let src = "module m (a); input a;";
        assert!(parse_verilog(src).is_err());
    }

    #[test]
    fn constants_create_single_driver() {
        let src = "module m (y, z); output y, z; buf g1 (y, 1'b0); buf g2 (z, 1'b0); endmodule";
        let parsed = parse_verilog(src).expect("parse");
        let consts = parsed
            .netlist
            .gates()
            .iter()
            .filter(|g| g.kind == GateKind::Const0)
            .count();
        assert_eq!(consts, 1, "constant net must be driven once");
        let conv = parsed.netlist.to_aig().expect("valid");
        assert_eq!(conv.aig.eval(&[]), vec![false, false]);
    }
}
