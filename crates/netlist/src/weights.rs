//! Weight (resource cost) files: one `<net> <weight>` pair per line, as
//! in the ICCAD'17 contest's resource-aware instances.

use crate::netlist::{NetId, Netlist};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error from [`WeightTable::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseWeightsError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseWeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "weights parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseWeightsError {}

/// Per-net resource costs. Nets missing from the table fall back to a
/// configurable default weight.
///
/// # Examples
///
/// ```
/// use eco_netlist::WeightTable;
///
/// let table = WeightTable::parse("# comment\nw1 10\nw2 3\n")?;
/// assert_eq!(table.get("w1"), Some(10));
/// assert_eq!(table.get("nope"), None);
/// # Ok::<(), eco_netlist::ParseWeightsError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WeightTable {
    weights: HashMap<String, u64>,
}

impl WeightTable {
    /// Creates an empty table.
    pub fn new() -> WeightTable {
        WeightTable::default()
    }

    /// Parses the `<net> <weight>` line format. Blank lines and lines
    /// starting with `#` or `//` are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ParseWeightsError`] on malformed lines.
    pub fn parse(text: &str) -> Result<WeightTable, ParseWeightsError> {
        let mut weights = HashMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
                continue;
            }
            let mut parts = line.split_whitespace();
            let name = parts.next().ok_or(ParseWeightsError {
                line: i + 1,
                message: "missing net name".to_string(),
            })?;
            let w: u64 = parts
                .next()
                .ok_or(ParseWeightsError {
                    line: i + 1,
                    message: "missing weight".to_string(),
                })?
                .parse()
                .map_err(|_| ParseWeightsError {
                    line: i + 1,
                    message: "weight is not a non-negative integer".to_string(),
                })?;
            if parts.next().is_some() {
                return Err(ParseWeightsError {
                    line: i + 1,
                    message: "trailing tokens".to_string(),
                });
            }
            weights.insert(name.to_string(), w);
        }
        Ok(WeightTable { weights })
    }

    /// Sets the weight of a net.
    pub fn set(&mut self, net: impl Into<String>, weight: u64) {
        self.weights.insert(net.into(), weight);
    }

    /// The weight of a net, if present.
    pub fn get(&self, net: &str) -> Option<u64> {
        self.weights.get(net).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Serializes in the `<net> <weight>` line format (sorted by name
    /// for determinism).
    pub fn to_text(&self) -> String {
        let mut entries: Vec<(&String, &u64)> = self.weights.iter().collect();
        entries.sort();
        entries.iter().map(|(n, w)| format!("{n} {w}\n")).collect()
    }

    /// Resolves weights per net id of `netlist`, with `default` for nets
    /// not in the table.
    pub fn resolve(&self, netlist: &Netlist, default: u64) -> Vec<u64> {
        (0..netlist.num_nets())
            .map(|i| {
                self.get(netlist.net_name(NetId(i as u32)))
                    .unwrap_or(default)
            })
            .collect()
    }
}

impl FromIterator<(String, u64)> for WeightTable {
    fn from_iter<T: IntoIterator<Item = (String, u64)>>(iter: T) -> WeightTable {
        WeightTable {
            weights: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GateKind;

    #[test]
    fn parse_and_roundtrip() {
        let t = WeightTable::parse("a 1\nb 20\n# c 3\n\n// d 4\n").expect("parse");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("b"), Some(20));
        let text = t.to_text();
        let t2 = WeightTable::parse(&text).expect("reparse");
        assert_eq!(t, t2);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let e = WeightTable::parse("a 1\nbad\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e2 = WeightTable::parse("a notanumber\n").unwrap_err();
        assert_eq!(e2.line, 1);
        let e3 = WeightTable::parse("a 1 extra\n").unwrap_err();
        assert!(e3.message.contains("trailing"));
    }

    #[test]
    fn resolve_with_default() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let w = nl.add_net("w");
        nl.add_gate(GateKind::Buf, "g", w, vec![a]);
        nl.mark_output(w);
        let mut t = WeightTable::new();
        t.set("w", 7);
        let resolved = t.resolve(&nl, 5);
        assert_eq!(resolved[a.index()], 5);
        assert_eq!(resolved[w.index()], 7);
    }

    #[test]
    fn from_iterator() {
        let t: WeightTable = vec![("x".to_string(), 3u64)].into_iter().collect();
        assert_eq!(t.get("x"), Some(3));
    }
}
