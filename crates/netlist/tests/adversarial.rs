//! Adversarial front-end tests: malformed and hostile inputs must come
//! back as typed errors from `parse_verilog`/`to_aig` — never a panic.

use eco_netlist::{parse_verilog, GateKind, NetId, Netlist, NetlistError};

const SAMPLE: &str = "\
module top (a, b, c, y, z);
  input a, b, c;
  output y, z;
  wire w1, w2;
  and g1 (w1, a, b);
  // eco_target w1
  xor g2 (w2, w1, c);
  not g3 (y, w2);
  buf g4 (z, 1'b1);
endmodule
";

/// Every byte-prefix truncation of a well-formed module either parses
/// (only the full text should) or returns a typed parse error; the
/// parser must never panic on an unexpected end of file.
#[test]
fn truncated_verilog_never_panics() {
    let full = SAMPLE;
    for cut in 0..full.len() {
        if !full.is_char_boundary(cut) {
            continue;
        }
        let prefix = &full[..cut];
        match parse_verilog(prefix) {
            Ok(parsed) => {
                // Anything that parses must also convert or fail typed.
                let _ = parsed.netlist.to_aig();
            }
            Err(e) => {
                assert!(!e.message.is_empty(), "cut at {cut}: empty message");
            }
        }
    }
    // The interesting cut points are hard errors, not silent successes.
    for (cut, what) in [
        (0, "empty file"),
        (7, "mid module keyword"),
        (20, "mid port list"),
        (55, "after input decl"),
        (100, "mid gate instance"),
        (full.len() - 10, "missing endmodule"),
    ] {
        assert!(
            parse_verilog(&full[..cut]).is_err(),
            "truncation at {cut} ({what}) must be an error"
        );
    }
}

#[test]
fn garbage_bytes_are_typed_errors() {
    for src in [
        "module m (a; %$#!",
        "module @ (a);",
        "mod|ule",
        "\u{0}\u{1}",
    ] {
        let e = parse_verilog(src);
        assert!(e.is_err(), "{src:?} must not parse");
    }
}

#[test]
fn undriven_output_is_typed_error_from_to_aig() {
    let src = "
module m (a, y);
  input a;
  output y;
  wire w;
  and g1 (w, a, a);
endmodule
";
    let parsed = parse_verilog(src).expect("parses; undriven is semantic");
    assert_eq!(
        parsed.netlist.to_aig().unwrap_err(),
        NetlistError::Undriven("y".to_string())
    );
}

#[test]
fn undriven_gate_input_is_typed_error() {
    let src = "
module m (a, y);
  input a;
  output y;
  wire ghost;
  and g1 (y, a, ghost);
endmodule
";
    let parsed = parse_verilog(src).expect("parses");
    assert_eq!(
        parsed.netlist.to_aig().unwrap_err(),
        NetlistError::Undriven("ghost".to_string())
    );
}

#[test]
fn combinational_cycle_is_typed_error() {
    let src = "
module m (a, y);
  input a;
  output y;
  wire x;
  and g1 (x, a, y);
  not g2 (y, x);
endmodule
";
    let parsed = parse_verilog(src).expect("parses; cycle is semantic");
    assert!(matches!(
        parsed.netlist.to_aig().unwrap_err(),
        NetlistError::CombinationalCycle(_)
    ));
}

#[test]
fn self_loop_gate_is_typed_error() {
    let src = "
module m (a, y);
  input a;
  output y;
  and g1 (y, y, a);
endmodule
";
    let parsed = parse_verilog(src).expect("parses");
    assert!(matches!(
        parsed.netlist.to_aig().unwrap_err(),
        NetlistError::CombinationalCycle(_)
    ));
}

#[test]
fn duplicate_net_drivers_are_typed_errors() {
    let src = "
module m (a, b, y);
  input a, b;
  output y;
  and g1 (y, a, b);
  or  g2 (y, a, b);
endmodule
";
    let parsed = parse_verilog(src).expect("parses; double drive is semantic");
    assert_eq!(
        parsed.netlist.to_aig().unwrap_err(),
        NetlistError::MultipleDrivers("y".to_string())
    );
}

#[test]
fn gate_driving_an_input_is_a_multiple_driver_error() {
    let src = "
module m (a, b, y);
  input a, b;
  output y;
  and g1 (a, a, b);
  buf g2 (y, a);
endmodule
";
    let parsed = parse_verilog(src).expect("parses");
    assert_eq!(
        parsed.netlist.to_aig().unwrap_err(),
        NetlistError::MultipleDrivers("a".to_string())
    );
}

#[test]
fn duplicate_input_declaration_is_a_parse_error() {
    for src in [
        "module m (a, y); input a, a; output y; buf g (y, a); endmodule",
        "module m (a, y); input a; input a; output y; buf g (y, a); endmodule",
    ] {
        let e = parse_verilog(src).unwrap_err();
        assert!(e.message.contains("more than once"), "{src:?}: {e}");
    }
}

#[test]
fn duplicate_output_declaration_is_a_parse_error() {
    let src = "module m (a, y); input a; output y, y; buf g (y, a); endmodule";
    let e = parse_verilog(src).unwrap_err();
    assert!(e.message.contains("more than once"), "{e}");
}

#[test]
fn input_also_declared_output_is_a_parse_error() {
    let src = "module m (a); input a; output a; endmodule";
    let e = parse_verilog(src).unwrap_err();
    assert!(e.message.contains("both"), "{e}");
}

#[test]
fn duplicate_input_via_api_is_caught_by_validate() {
    let mut nl = Netlist::new("m");
    let a = nl.add_input("a");
    nl.add_input("a"); // same net marked input twice
    let y = nl.add_net("y");
    nl.add_gate(GateKind::Buf, "g", y, vec![a]);
    nl.mark_output(y);
    assert_eq!(
        nl.validate().unwrap_err(),
        NetlistError::DuplicateInput("a".to_string())
    );
}

#[test]
fn foreign_net_ids_are_range_checked_not_panics() {
    let bogus = NetId::from_index(999);
    // As a gate output.
    let mut nl = Netlist::new("m");
    let a = nl.add_input("a");
    nl.add_gate(GateKind::Buf, "g", bogus, vec![a]);
    assert_eq!(nl.validate().unwrap_err(), NetlistError::InvalidNetId(999));
    // As a gate input.
    let mut nl = Netlist::new("m");
    nl.add_input("a");
    let y = nl.add_net("y");
    nl.add_gate(GateKind::Buf, "g", y, vec![bogus]);
    assert_eq!(nl.validate().unwrap_err(), NetlistError::InvalidNetId(999));
    // As a marked output.
    let mut nl = Netlist::new("m");
    nl.add_input("a");
    nl.mark_output(bogus);
    assert_eq!(nl.validate().unwrap_err(), NetlistError::InvalidNetId(999));
    assert!(matches!(
        nl.to_aig().unwrap_err(),
        NetlistError::InvalidNetId(999)
    ));
}

#[test]
fn gate_with_no_connections_is_a_parse_error() {
    let src = "module m (a, y); input a; output y; and g (); endmodule";
    let e = parse_verilog(src).unwrap_err();
    assert!(e.message.contains("no connections"), "{e}");
}

#[test]
fn wrong_arity_from_text_is_typed_error() {
    // `not` with two inputs.
    let src = "module m (a, b, y); input a, b; output y; not g (y, a, b); endmodule";
    let parsed = parse_verilog(src).expect("parses; arity is semantic");
    assert!(matches!(
        parsed.netlist.to_aig().unwrap_err(),
        NetlistError::BadArity { .. }
    ));
}
