//! Randomized tests of the netlist layer: random netlists round trip
//! through Verilog text, AIG conversion is stable, and weights resolve
//! consistently.

use eco_netlist::{parse_verilog, GateKind, NetId, Netlist, WeightTable};
use eco_testutil::{cases, Rng};

/// A random netlist recipe: gate kinds plus input arities, wired to
/// randomly chosen earlier nets.
#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    gates: Vec<(u8, Vec<usize>)>, // (kind selector, fanin picks)
    num_outputs: usize,
}

fn random_recipe(rng: &mut Rng) -> Recipe {
    let num_inputs = rng.range(2, 6) as usize;
    let num_gates = rng.range(1, 20) as usize;
    let num_outputs = rng.range(1, 4) as usize;
    let gates = (0..num_gates)
        .map(|_| {
            let kind_sel = rng.below(8) as u8;
            let picks = (0..rng.range(1, 4)).map(|_| rng.index(64)).collect();
            (kind_sel, picks)
        })
        .collect();
    Recipe {
        num_inputs,
        gates,
        num_outputs,
    }
}

fn build(recipe: &Recipe) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mut nets: Vec<NetId> = (0..recipe.num_inputs)
        .map(|i| nl.add_input(format!("i{i}")))
        .collect();
    for (gi, (kind_sel, picks)) in recipe.gates.iter().enumerate() {
        let kind = match kind_sel % 8 {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            3 => GateKind::Nor,
            4 => GateKind::Xor,
            5 => GateKind::Xnor,
            6 => GateKind::Buf,
            _ => GateKind::Not,
        };
        let arity = match kind {
            GateKind::Buf | GateKind::Not => 1,
            _ => picks.len().max(1),
        };
        let ins: Vec<NetId> = (0..arity)
            .map(|k| nets[picks[k % picks.len()] % nets.len()])
            .collect();
        let out = nl.add_net(format!("w{gi}"));
        nl.add_gate(kind, format!("g{gi}"), out, ins);
        nets.push(out);
    }
    for k in 0..recipe.num_outputs {
        let src = nets[nets.len() - 1 - (k % nets.len().min(4))];
        let po = nl.add_net(format!("o{k}"));
        nl.add_gate(GateKind::Buf, format!("gpo{k}"), po, vec![src]);
        nl.mark_output(po);
    }
    nl
}

#[test]
fn verilog_roundtrip_preserves_function() {
    cases(64, |case, rng| {
        let recipe = random_recipe(rng);
        let nl = build(&recipe);
        let conv = nl.to_aig().expect("generated netlists are valid");
        let text = nl.to_verilog();
        let again = parse_verilog(&text).expect("emitted text parses").netlist;
        let conv2 = again.to_aig().expect("reparsed netlist is valid");
        assert_eq!(conv.aig.num_inputs(), conv2.aig.num_inputs(), "case {case}");
        assert_eq!(
            conv.aig.num_outputs(),
            conv2.aig.num_outputs(),
            "case {case}"
        );
        let n = conv.aig.num_inputs();
        // 64 random-ish patterns via fixed words.
        let words: Vec<u64> = (0..n)
            .map(|i| 0x9E37_79B9u64.rotate_left(i as u32 * 7) ^ (i as u64))
            .collect();
        assert_eq!(
            conv.aig.simulate_outputs(&words),
            conv2.aig.simulate_outputs(&words),
            "case {case}: {recipe:?}"
        );
    });
}

#[test]
fn aig_conversion_is_deterministic() {
    cases(64, |case, rng| {
        let recipe = random_recipe(rng);
        let nl = build(&recipe);
        let a = nl.to_aig().expect("valid").aig.to_aag();
        let b = nl.to_aig().expect("valid").aig.to_aag();
        assert_eq!(a, b, "case {case}");
    });
}

#[test]
fn weight_resolution_defaults_consistently() {
    cases(64, |case, rng| {
        let recipe = random_recipe(rng);
        let default = rng.range(1, 100);
        let nl = build(&recipe);
        let mut table = WeightTable::new();
        table.set("w0", 7);
        let resolved = table.resolve(&nl, default);
        assert_eq!(resolved.len(), nl.num_nets(), "case {case}");
        for (idx, &got) in resolved.iter().enumerate() {
            let name = nl.net_name(NetId::from_index(idx));
            let expect = if name == "w0" { 7 } else { default };
            assert_eq!(got, expect, "case {case}: net {name}");
        }
    });
}
