//! Clause storage for the CDCL solver.
//!
//! Clauses live in a simple arena indexed by [`ClauseRef`]. Deleted
//! clauses are tombstoned and their slots recycled, which keeps
//! references stable across database reductions (no relocation pass is
//! needed, and proof logs can keep pointing at original clause ids).

use crate::types::Lit;

/// Stable handle to a clause in the solver's clause arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    /// Creates a reference from a dense arena index (for proof
    /// traversal; only meaningful for indices below the arena length).
    #[inline]
    pub fn from_index(index: usize) -> ClauseRef {
        ClauseRef(index as u32)
    }

    /// Returns the dense arena index of the clause.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single clause: literals plus bookkeeping for the learnt-clause
/// reduction heuristic.
#[derive(Clone, Debug)]
pub(crate) struct Clause {
    pub lits: Vec<Lit>,
    pub learnt: bool,
    pub deleted: bool,
    pub activity: f32,
    /// Literal block distance at learning time (Glucose-style quality).
    pub lbd: u32,
}

/// Arena of clauses with tombstone deletion and slot recycling.
#[derive(Clone, Debug, Default)]
pub(crate) struct ClauseDb {
    arena: Vec<Clause>,
    free: Vec<u32>,
    pub num_learnt: usize,
    pub learnt_literals: u64,
}

impl ClauseDb {
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    pub fn alloc(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(
            !lits.is_empty(),
            "empty clauses are represented by the ok flag"
        );
        if learnt {
            self.num_learnt += 1;
            self.learnt_literals += lits.len() as u64;
        }
        let clause = Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd,
        };
        if let Some(slot) = self.free.pop() {
            self.arena[slot as usize] = clause;
            ClauseRef(slot)
        } else {
            self.arena.push(clause);
            ClauseRef((self.arena.len() - 1) as u32)
        }
    }

    pub fn free(&mut self, cref: ClauseRef) {
        let c = &mut self.arena[cref.index()];
        debug_assert!(!c.deleted);
        if c.learnt {
            self.num_learnt -= 1;
            self.learnt_literals -= c.lits.len() as u64;
        }
        c.deleted = true;
        c.lits = Vec::new();
        self.free.push(cref.0);
    }

    #[inline]
    pub fn get(&self, cref: ClauseRef) -> &Clause {
        &self.arena[cref.index()]
    }

    #[inline]
    pub fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.arena[cref.index()]
    }

    /// Iterates over the refs of all live learnt clauses.
    pub fn learnt_refs(&self) -> Vec<ClauseRef> {
        self.arena
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
            .collect()
    }

    /// Number of live clauses (learnt and original).
    pub fn len(&self) -> usize {
        self.arena.len() - self.free.len()
    }

    /// Total arena length including tombstones (equals the live count
    /// in proof mode, which never frees).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lits(ids: &[i32]) -> Vec<Lit> {
        ids.iter()
            .map(|&i| Var::from_index(i.unsigned_abs() as usize).lit(i < 0))
            .collect()
    }

    #[test]
    fn alloc_and_get_roundtrip() {
        let mut db = ClauseDb::new();
        let c = db.alloc(lits(&[1, -2, 3]), false, 0);
        assert_eq!(db.get(c).lits, lits(&[1, -2, 3]));
        assert!(!db.get(c).learnt);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn free_recycles_slots() {
        let mut db = ClauseDb::new();
        let a = db.alloc(lits(&[1, 2]), true, 2);
        assert_eq!(db.num_learnt, 1);
        db.free(a);
        assert_eq!(db.num_learnt, 0);
        assert_eq!(db.len(), 0);
        let b = db.alloc(lits(&[3, 4]), false, 0);
        assert_eq!(a.0, b.0, "slot should be recycled");
        assert_eq!(db.get(b).lits, lits(&[3, 4]));
    }

    #[test]
    fn learnt_refs_filters_deleted_and_original() {
        let mut db = ClauseDb::new();
        let _orig = db.alloc(lits(&[1, 2]), false, 0);
        let l1 = db.alloc(lits(&[2, 3]), true, 2);
        let l2 = db.alloc(lits(&[3, 4]), true, 2);
        db.free(l1);
        assert_eq!(db.learnt_refs(), vec![l2]);
    }

    #[test]
    fn learnt_literal_accounting() {
        let mut db = ClauseDb::new();
        let a = db.alloc(lits(&[1, 2, 3]), true, 3);
        let _b = db.alloc(lits(&[4, 5]), true, 2);
        assert_eq!(db.learnt_literals, 5);
        db.free(a);
        assert_eq!(db.learnt_literals, 2);
    }
}
