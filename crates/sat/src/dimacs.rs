//! DIMACS CNF interchange: parse `p cnf` files into a [`Solver`] and
//! serialize clause sets back out — the standard format for exchanging
//! SAT instances with external tools.

use crate::solver::Solver;
use crate::types::{Lit, Var};
use std::error::Error;
use std::fmt;

/// Error from [`parse_dimacs`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number of the offending token.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDimacsError {}

/// A parsed DIMACS instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimacsInstance {
    /// Declared variable count.
    pub num_vars: usize,
    /// The clauses as signed 1-based literals.
    pub clauses: Vec<Vec<i32>>,
}

impl DimacsInstance {
    /// Loads the instance into a fresh solver, returning it together
    /// with the variables (index `i` = DIMACS variable `i + 1`).
    pub fn into_solver(&self) -> (Solver, Vec<Var>) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..self.num_vars).map(|_| solver.new_var()).collect();
        for clause in &self.clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&raw| vars[raw.unsigned_abs() as usize - 1].lit(raw < 0))
                .collect();
            solver.add_clause(&lits);
        }
        (solver, vars)
    }

    /// Serializes in DIMACS format.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                out.push_str(&lit.to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }
}

/// Parses DIMACS CNF text (comments and blank lines allowed; clauses
/// are zero-terminated and may span lines).
///
/// # Errors
///
/// [`ParseDimacsError`] for malformed headers, out-of-range variables,
/// or unterminated clauses.
///
/// # Examples
///
/// ```
/// use eco_sat::{parse_dimacs, SolveResult};
///
/// let inst = parse_dimacs("c tiny\np cnf 2 2\n1 2 0\n-1 2 0\n")?;
/// let (mut solver, vars) = inst.into_solver();
/// assert_eq!(solver.solve(&[]), SolveResult::Sat);
/// assert!(solver.model_value(vars[1].positive()).is_true());
/// # Ok::<(), eco_sat::ParseDimacsError>(())
/// ```
pub fn parse_dimacs(text: &str) -> Result<DimacsInstance, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut declared_clauses = 0usize;
    let mut clauses: Vec<Vec<i32>> = Vec::new();
    let mut current: Vec<i32> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if line.starts_with('p') {
            if num_vars.is_some() {
                return Err(ParseDimacsError {
                    line: i + 1,
                    message: "duplicate problem line".into(),
                });
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 || fields[1] != "cnf" {
                return Err(ParseDimacsError {
                    line: i + 1,
                    message: "expected 'p cnf <vars> <clauses>'".into(),
                });
            }
            num_vars = Some(fields[2].parse().map_err(|_| ParseDimacsError {
                line: i + 1,
                message: "bad variable count".into(),
            })?);
            declared_clauses = fields[3].parse().map_err(|_| ParseDimacsError {
                line: i + 1,
                message: "bad clause count".into(),
            })?;
            continue;
        }
        let nv = num_vars.ok_or(ParseDimacsError {
            line: i + 1,
            message: "clause before problem line".into(),
        })?;
        for tok in line.split_whitespace() {
            let raw: i32 = tok.parse().map_err(|_| ParseDimacsError {
                line: i + 1,
                message: format!("bad literal {tok:?}"),
            })?;
            if raw == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                if raw.unsigned_abs() as usize > nv {
                    return Err(ParseDimacsError {
                        line: i + 1,
                        message: format!("variable {} out of range", raw.abs()),
                    });
                }
                current.push(raw);
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: text.lines().count(),
            message: "unterminated clause".into(),
        });
    }
    let num_vars = num_vars.ok_or(ParseDimacsError {
        line: 0,
        message: "missing problem line".into(),
    })?;
    let _ = declared_clauses; // informative only; actual count wins
    Ok(DimacsInstance { num_vars, clauses })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SolveResult;

    #[test]
    fn parse_solve_roundtrip() {
        let text = "c example\np cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n";
        let inst = parse_dimacs(text).expect("parse");
        assert_eq!(inst.num_vars, 3);
        assert_eq!(inst.clauses.len(), 3);
        let again = parse_dimacs(&inst.to_dimacs()).expect("reparse");
        assert_eq!(inst, again);
        let (mut solver, vars) = inst.into_solver();
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        // -1 unit: v1 false; (1 or -2): -2 must hold; (2 or 3): 3 holds.
        assert!(solver.model_value(vars[0].positive()).is_false());
        assert!(solver.model_value(vars[1].positive()).is_false());
        assert!(solver.model_value(vars[2].positive()).is_true());
    }

    #[test]
    fn multiline_clauses() {
        let inst = parse_dimacs("p cnf 2 1\n1\n2\n0\n").expect("parse");
        assert_eq!(inst.clauses, vec![vec![1, 2]]);
    }

    #[test]
    fn unsat_instance() {
        let inst = parse_dimacs("p cnf 1 2\n1 0\n-1 0\n").expect("parse");
        let (mut solver, _) = inst.into_solver();
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn errors_are_positioned() {
        assert!(parse_dimacs("1 2 0\n").is_err());
        assert_eq!(parse_dimacs("p cnf 1 1\n2 0\n").unwrap_err().line, 2);
        assert!(parse_dimacs("p cnf 1 1\n1\n").is_err());
        assert!(parse_dimacs("p dnf 1 1\n").is_err());
        assert!(parse_dimacs("").is_err());
    }

    #[test]
    fn comments_and_percent_lines_skipped() {
        let inst = parse_dimacs("c a\n%\np cnf 1 1\nc mid\n1 0\n").expect("parse");
        assert_eq!(inst.clauses.len(), 1);
    }
}
