//! Cooperative resource governance for long SAT call chains.
//!
//! A [`ResourceGovernor`] is a cheaply-cloneable shared handle carrying
//! a wall-clock deadline, a global conflict/propagation budget pool
//! drawn down across *all* solver calls that share the handle, and a
//! cooperative cancellation flag. Attach it to any number of solvers
//! with [`Solver::set_search_control`](crate::Solver::set_search_control);
//! each solver then polls the governor periodically from inside its
//! search loop and returns [`SolveResult::Unknown`](crate::SolveResult)
//! promptly once the governor trips.
//!
//! For deterministic robustness testing the governor can also carry a
//! [`FaultPlan`] that forces `Unknown` answers (or a cancellation) at
//! chosen call indices, seeded and reproducible.
//!
//! # Examples
//!
//! ```
//! use eco_sat::{FaultPlan, GovernorLimits, ResourceGovernor, SolveResult, Solver, TripReason};
//!
//! // Fault-inject the very first solve: it must come back Unknown.
//! let governor = ResourceGovernor::new(GovernorLimits {
//!     fault_plan: Some(FaultPlan::AtCalls(vec![1])),
//!     ..GovernorLimits::default()
//! });
//! let mut solver = Solver::new();
//! let v = solver.new_var();
//! solver.add_clause(&[v.positive()]);
//! solver.set_search_control(Some(governor.control()));
//! assert_eq!(solver.solve(&[]), SolveResult::Unknown);
//! assert_eq!(governor.fault_injections(), 1);
//! // Fault trips are per-call, not sticky: the next call succeeds.
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! assert_eq!(governor.trip(), None);
//!
//! // Cancellation is sticky and shared across every attached solver.
//! governor.cancel();
//! assert_eq!(governor.trip(), Some(TripReason::Cancelled));
//! assert_eq!(solver.solve(&[]), SolveResult::Unknown);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative stop hook polled by [`Solver`](crate::Solver) during
/// search.
///
/// Returning `true` from either method asks the solver to abandon the
/// current call and answer
/// [`SolveResult::Unknown`](crate::SolveResult); the solver stays fully
/// usable for later calls.
pub trait SearchControl: std::fmt::Debug + Send + Sync {
    /// Called once at the start of every [`Solver::solve`](crate::Solver::solve).
    /// Returning `true` aborts the call before any search happens.
    fn solve_started(&self) -> bool {
        false
    }

    /// Called periodically from the search loop (and once more when a
    /// call finishes) with the conflicts and propagations spent since
    /// the previous report. Returning `true` stops the current call.
    fn consume(&self, conflicts: u64, propagations: u64) -> bool;
}

/// Why a [`ResourceGovernor`] stopped (or is stopping) solver calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TripReason {
    /// [`ResourceGovernor::cancel`] was called.
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The shared global conflict/propagation pool ran dry.
    GlobalBudget,
    /// A [`FaultPlan`] forced this call to fail (per-call, not sticky).
    FaultInjected,
}

impl TripReason {
    /// A short lowercase human-readable name (stable across versions,
    /// used in reports and CLI output).
    pub fn name(self) -> &'static str {
        match self {
            TripReason::Cancelled => "cancelled",
            TripReason::Deadline => "deadline",
            TripReason::GlobalBudget => "global budget",
            TripReason::FaultInjected => "fault injected",
        }
    }
}

impl std::fmt::Display for TripReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic schedule of injected solver failures, evaluated
/// against the 1-based global SAT-call index counted by the governor.
///
/// Plans are stateless functions of the call index, so a given plan and
/// call sequence always fails the same calls — the foundation of the
/// reproducible fault-injection tests.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultPlan {
    /// Fail exactly the listed call indices.
    AtCalls(Vec<u64>),
    /// Fail every `n`-th call (`n == 0` never fails).
    EveryNth(u64),
    /// Fail call `i` when `splitmix64(seed + i) % one_in == 0` — a
    /// seeded, reproducible pseudo-random schedule.
    Seeded {
        /// PRNG seed.
        seed: u64,
        /// Average one failure per this many calls (`0` never fails).
        one_in: u64,
    },
    /// Trigger a sticky [`TripReason::Cancelled`] at call `n` (and
    /// thereafter), exercising hard-stop paths deterministically.
    CancelAt(u64),
    /// Panic at the start of the first call whose index is `>= n`,
    /// simulating a solver bug deep inside a search. Serving layers
    /// wrap solve paths in `catch_unwind` and must turn this into a
    /// structured error instead of dying; the `>=` comparison makes
    /// the plan usable on a child governor sharing a chain-wide call
    /// counter ("panic on this child's next call").
    PanicAt(u64),
}

impl FaultPlan {
    /// Whether this plan injects a (per-call) fault at `call`.
    fn injects(&self, call: u64) -> bool {
        match self {
            FaultPlan::AtCalls(calls) => calls.contains(&call),
            FaultPlan::EveryNth(n) => *n > 0 && call.is_multiple_of(*n),
            FaultPlan::Seeded { seed, one_in } => {
                *one_in > 0 && splitmix64(seed.wrapping_add(call)).is_multiple_of(*one_in)
            }
            FaultPlan::CancelAt(_) | FaultPlan::PanicAt(_) => false,
        }
    }

    /// Whether this plan cancels the governor at `call`.
    fn cancels(&self, call: u64) -> bool {
        matches!(self, FaultPlan::CancelAt(n) if call >= *n)
    }

    /// Whether this plan panics the calling thread at `call`.
    fn panics(&self, call: u64) -> bool {
        matches!(self, FaultPlan::PanicAt(n) if call >= *n)
    }
}

/// SplitMix64: the standard 64-bit finalizer-style PRNG step.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resource limits for a [`ResourceGovernor`]. All fields default to
/// "unlimited"/absent; construct with functional-update syntax over
/// [`GovernorLimits::default`].
#[derive(Clone, Debug, Default)]
pub struct GovernorLimits {
    /// Wall-clock deadline, measured from governor construction.
    pub timeout: Option<Duration>,
    /// Global conflict pool shared by every attached solver.
    pub global_conflicts: Option<u64>,
    /// Global propagation pool shared by every attached solver.
    pub global_propagations: Option<u64>,
    /// Deterministic fault-injection schedule.
    pub fault_plan: Option<FaultPlan>,
}

#[derive(Debug)]
struct GovernorState {
    deadline: Option<Instant>,
    conflict_pool: Option<AtomicU64>,
    propagation_pool: Option<AtomicU64>,
    cancelled: AtomicBool,
    deadline_tripped: AtomicBool,
    budget_tripped: AtomicBool,
    calls: AtomicU64,
    fault_injections: AtomicU64,
    fault_plan: Option<FaultPlan>,
    /// Child governors carry their own cancellation flag and — when
    /// created with [`ResourceGovernor::child_with_limits`] — their own
    /// deadline, budget pools and fault plan, while still observing
    /// every ancestor's limits through the chain. The SAT-call counter
    /// always lives at the root, so fault plans anywhere in a chain
    /// see one consistent call numbering.
    parent: Option<Arc<GovernorState>>,
}

impl GovernorState {
    /// The root of the parent chain (`self` when not a child).
    fn root(&self) -> &GovernorState {
        let mut state = self;
        while let Some(parent) = state.parent.as_deref() {
            state = parent;
        }
        state
    }

    /// Walks the chain from `self` to the root until `f` returns
    /// `Some`.
    fn find_up<T>(&self, mut f: impl FnMut(&GovernorState) -> Option<T>) -> Option<T> {
        let mut state = self;
        loop {
            if let Some(found) = f(state) {
                return Some(found);
            }
            match state.parent.as_deref() {
                Some(parent) => state = parent,
                None => return None,
            }
        }
    }

    /// Whether this handle or any ancestor was cancelled.
    fn cancelled_chain(&self) -> bool {
        self.find_up(|s| s.cancelled.load(Ordering::Relaxed).then_some(()))
            .is_some()
    }

    /// Whether this state's own deadline (if any) has passed, latching
    /// the sticky flag on first observation.
    fn own_deadline_passed(&self) -> bool {
        if self.deadline_tripped.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.deadline_tripped.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// Shared governor for a chain of SAT calls: wall-clock deadline,
/// global budget pool and cooperative cancellation in one handle.
///
/// Cloning is cheap (an `Arc` bump) and every clone observes and
/// affects the same state, so the handle can be kept by the caller for
/// [`ResourceGovernor::cancel`] / inspection while clones ride inside
/// solvers. See the [module docs](self) for an example.
#[derive(Clone, Debug)]
pub struct ResourceGovernor {
    state: Arc<GovernorState>,
}

impl ResourceGovernor {
    /// Creates a governor; the deadline clock starts now.
    pub fn new(limits: GovernorLimits) -> ResourceGovernor {
        ResourceGovernor {
            state: Arc::new(GovernorState {
                deadline: limits.timeout.map(|t| Instant::now() + t),
                conflict_pool: limits.global_conflicts.map(AtomicU64::new),
                propagation_pool: limits.global_propagations.map(AtomicU64::new),
                cancelled: AtomicBool::new(false),
                deadline_tripped: AtomicBool::new(false),
                budget_tripped: AtomicBool::new(false),
                calls: AtomicU64::new(0),
                fault_injections: AtomicU64::new(0),
                fault_plan: limits.fault_plan,
                parent: None,
            }),
        }
    }

    /// An unlimited governor (useful as a cancellation-only handle).
    pub fn unlimited() -> ResourceGovernor {
        ResourceGovernor::new(GovernorLimits::default())
    }

    /// A child handle for one unit of speculative work: it shares the
    /// parent's deadline, global pools, fault plan and call counter, but
    /// carries its own cancellation flag. [`ResourceGovernor::cancel`]
    /// on the child stops only solvers attached to the child, while a
    /// parent cancellation (or deadline/budget trip) is still observed
    /// through the chain — exactly what a racing worker needs so losers
    /// can be cancelled without touching the winner or the run.
    pub fn child(&self) -> ResourceGovernor {
        self.child_with_limits(GovernorLimits::default())
    }

    /// A child handle with its *own* limits layered under the parent's:
    /// its deadline clock starts now, its pools are private, and its
    /// fault plan is evaluated against the chain-wide call counter.
    /// Every check observes the tightest constraint along the chain, so
    /// the child can never outlive or outspend the parent — the
    /// per-request QoS primitive: a serving process keeps one root
    /// governor for global capacity and derives one bounded child per
    /// request (deadline + fair-share conflict pool), cancelling or
    /// expiring requests individually without touching its neighbours.
    pub fn child_with_limits(&self, limits: GovernorLimits) -> ResourceGovernor {
        ResourceGovernor {
            state: Arc::new(GovernorState {
                deadline: limits.timeout.map(|t| Instant::now() + t),
                conflict_pool: limits.global_conflicts.map(AtomicU64::new),
                propagation_pool: limits.global_propagations.map(AtomicU64::new),
                cancelled: AtomicBool::new(false),
                deadline_tripped: AtomicBool::new(false),
                budget_tripped: AtomicBool::new(false),
                calls: AtomicU64::new(0),
                fault_injections: AtomicU64::new(0),
                fault_plan: limits.fault_plan,
                parent: Some(self.state.clone()),
            }),
        }
    }

    /// The handle as a solver hook for
    /// [`Solver::set_search_control`](crate::Solver::set_search_control).
    pub fn control(&self) -> Arc<dyn SearchControl> {
        Arc::new(self.clone())
    }

    /// Requests cooperative cancellation: every attached solver answers
    /// `Unknown` at its next check.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Relaxed);
    }

    /// The sticky trip reason, if any — checked in severity order
    /// (cancellation, deadline, then global budget). Per-call injected
    /// faults are *not* sticky and never appear here. Child handles
    /// also observe the trips of every ancestor.
    pub fn trip(&self) -> Option<TripReason> {
        self.hard_trip().or_else(|| {
            self.state
                .find_up(|s| s.budget_tripped.load(Ordering::Relaxed).then_some(()))
                .map(|()| TripReason::GlobalBudget)
        })
    }

    /// Like [`ResourceGovernor::trip`] but only the *hard* reasons that
    /// warrant abandoning remaining work outright (cancellation or an
    /// expired deadline), not a drained budget pool, which still leaves
    /// room for SAT-free work.
    pub fn hard_trip(&self) -> Option<TripReason> {
        if self.state.cancelled_chain() {
            return Some(TripReason::Cancelled);
        }
        if self.deadline_passed() {
            return Some(TripReason::Deadline);
        }
        None
    }

    /// Number of solver calls started under this governor (shared with
    /// the whole parent chain for child handles).
    pub fn sat_calls(&self) -> u64 {
        self.state.root().calls.load(Ordering::Relaxed)
    }

    /// Number of faults injected so far by the [`FaultPlan`]s of this
    /// handle and its ancestors.
    pub fn fault_injections(&self) -> u64 {
        let mut total = 0;
        let _ = self.state.find_up(|s| {
            total += s.fault_injections.load(Ordering::Relaxed);
            None::<()>
        });
        total
    }

    /// Tightest remaining conflict pool along the chain (`None` =
    /// unlimited everywhere).
    pub fn remaining_conflicts(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let _ = self.state.find_up(|s| {
            if let Some(pool) = &s.conflict_pool {
                let left = pool.load(Ordering::Relaxed);
                min = Some(min.map_or(left, |m| m.min(left)));
            }
            None::<()>
        });
        min
    }

    /// Time left before the nearest deadline along the chain (`None` =
    /// no deadline anywhere). Zero once any deadline has passed.
    pub fn remaining_time(&self) -> Option<Duration> {
        let mut nearest: Option<Instant> = None;
        let _ = self.state.find_up(|s| {
            if let Some(d) = s.deadline {
                nearest = Some(nearest.map_or(d, |n| n.min(d)));
            }
            None::<()>
        });
        nearest.map(|d| d.saturating_duration_since(Instant::now()))
    }

    fn deadline_passed(&self) -> bool {
        self.state
            .find_up(|s| s.own_deadline_passed().then_some(()))
            .is_some()
    }

    /// Draws `amount` from `pool`; returns `true` when the pool is now
    /// (or already was) empty.
    fn draw(pool: &AtomicU64, amount: u64) -> bool {
        let mut current = pool.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(amount);
            match pool.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return next == 0,
                Err(seen) => current = seen,
            }
        }
    }
}

impl SearchControl for ResourceGovernor {
    fn solve_started(&self) -> bool {
        // One chain-wide call numbering, owned by the root; each
        // state's own fault plan is then evaluated against it.
        let call = self.state.root().calls.fetch_add(1, Ordering::Relaxed) + 1;
        let injected = self
            .state
            .find_up(|s| {
                let plan = s.fault_plan.as_ref()?;
                if plan.cancels(call) {
                    s.cancelled.store(true, Ordering::Relaxed);
                }
                if plan.panics(call) {
                    s.fault_injections.fetch_add(1, Ordering::Relaxed);
                    panic!("injected solver panic (fault plan, call {call})");
                }
                if plan.injects(call) {
                    s.fault_injections.fetch_add(1, Ordering::Relaxed);
                    return Some(());
                }
                None
            })
            .is_some();
        injected || self.trip().is_some()
    }

    fn consume(&self, conflicts: u64, propagations: u64) -> bool {
        // Spend against every pool along the chain: a child's private
        // fair-share pool and the root's global capacity drain together.
        let _ = self.state.find_up(|s| {
            if let Some(pool) = &s.conflict_pool {
                if ResourceGovernor::draw(pool, conflicts) {
                    s.budget_tripped.store(true, Ordering::Relaxed);
                }
            }
            if let Some(pool) = &s.propagation_pool {
                if ResourceGovernor::draw(pool, propagations) {
                    s.budget_tripped.store(true, Ordering::Relaxed);
                }
            }
            None::<()>
        });
        self.trip().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SolveResult, Solver};

    /// A 3-colourability-style instance that takes some search: pigeonhole
    /// PHP(n+1, n) encoded directly — hard enough to burn conflicts.
    fn pigeonhole(solver: &mut Solver, holes: usize) -> Vec<Vec<crate::Lit>> {
        let pigeons = holes + 1;
        let vars: Vec<Vec<_>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| solver.new_var()).collect())
            .collect();
        for p in &vars {
            let clause: Vec<_> = p.iter().map(|v| v.positive()).collect();
            solver.add_clause(&clause);
        }
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                for (a, b) in vars[p1].iter().zip(&vars[p2]) {
                    solver.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        vars.into_iter()
            .map(|row| row.into_iter().map(|v| v.positive()).collect())
            .collect()
    }

    #[test]
    fn fault_plan_schedules_are_deterministic() {
        let plan = FaultPlan::Seeded { seed: 7, one_in: 4 };
        let a: Vec<bool> = (1..100).map(|i| plan.injects(i)).collect();
        let b: Vec<bool> = (1..100).map(|i| plan.injects(i)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "one_in=4 over 99 calls must fire");
        assert!(!a.iter().all(|&x| x), "and must not fire every call");

        let every = FaultPlan::EveryNth(3);
        assert!(!every.injects(1) && !every.injects(2) && every.injects(3));
        assert!(!FaultPlan::EveryNth(0).injects(1));
    }

    #[test]
    fn at_calls_faults_exactly_the_listed_calls() {
        let governor = ResourceGovernor::new(GovernorLimits {
            fault_plan: Some(FaultPlan::AtCalls(vec![2])),
            ..GovernorLimits::default()
        });
        let mut solver = Solver::new();
        let v = solver.new_var();
        solver.add_clause(&[v.positive()]);
        solver.set_search_control(Some(governor.control()));
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert_eq!(solver.solve(&[]), SolveResult::Unknown);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert_eq!(governor.sat_calls(), 3);
        assert_eq!(governor.fault_injections(), 1);
        assert_eq!(governor.trip(), None, "faults are not sticky");
    }

    #[test]
    fn global_conflict_pool_is_shared_across_solvers() {
        let governor = ResourceGovernor::new(GovernorLimits {
            global_conflicts: Some(50),
            ..GovernorLimits::default()
        });
        let mut a = Solver::new();
        pigeonhole(&mut a, 7);
        a.set_search_control(Some(governor.control()));
        let mut b = a.clone();
        // The first solver drains the pool...
        assert_eq!(a.solve(&[]), SolveResult::Unknown);
        assert_eq!(governor.trip(), Some(TripReason::GlobalBudget));
        // ...so the second one is rejected at call entry.
        assert_eq!(b.solve(&[]), SolveResult::Unknown);
        assert_eq!(governor.remaining_conflicts(), Some(0));
    }

    #[test]
    fn deadline_trips_solver_promptly() {
        let governor = ResourceGovernor::new(GovernorLimits {
            timeout: Some(Duration::from_millis(20)),
            ..GovernorLimits::default()
        });
        let mut solver = Solver::new();
        pigeonhole(&mut solver, 10);
        solver.set_search_control(Some(governor.control()));
        let t0 = Instant::now();
        let result = solver.solve(&[]);
        assert_eq!(result, SolveResult::Unknown);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "PHP(11,10) must be cut off far below its natural runtime"
        );
        assert_eq!(governor.trip(), Some(TripReason::Deadline));
        assert_eq!(governor.hard_trip(), Some(TripReason::Deadline));
    }

    #[test]
    fn cancellation_wins_over_other_reasons() {
        let governor = ResourceGovernor::new(GovernorLimits {
            global_conflicts: Some(1),
            ..GovernorLimits::default()
        });
        governor.cancel();
        assert_eq!(governor.trip(), Some(TripReason::Cancelled));
    }

    #[test]
    fn cancel_at_plan_sets_sticky_cancellation() {
        let governor = ResourceGovernor::new(GovernorLimits {
            fault_plan: Some(FaultPlan::CancelAt(2)),
            ..GovernorLimits::default()
        });
        let mut solver = Solver::new();
        let v = solver.new_var();
        solver.add_clause(&[v.positive()]);
        solver.set_search_control(Some(governor.control()));
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert_eq!(solver.solve(&[]), SolveResult::Unknown);
        assert_eq!(governor.trip(), Some(TripReason::Cancelled));
        assert_eq!(solver.solve(&[]), SolveResult::Unknown);
    }

    #[test]
    fn panic_at_plan_panics_inside_the_solver_call() {
        let governor = ResourceGovernor::new(GovernorLimits {
            fault_plan: Some(FaultPlan::PanicAt(2)),
            ..GovernorLimits::default()
        });
        let mut solver = Solver::new();
        let v = solver.new_var();
        solver.add_clause(&[v.positive()]);
        solver.set_search_control(Some(governor.control()));
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| solver.solve(&[])));
        let payload = unwound.expect_err("call 2 must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic carries a message");
        assert!(message.contains("injected solver panic"), "{message}");
        assert_eq!(governor.fault_injections(), 1);
        assert_eq!(governor.trip(), None, "a panic is not a sticky trip");
    }

    #[test]
    fn panic_at_fires_on_a_child_joining_a_running_call_chain() {
        // The chain-wide counter is already past 1; a child plan with
        // `PanicAt(current + 1)` must fire on the child's next call.
        let root = ResourceGovernor::unlimited();
        let mut warm = Solver::new();
        let v = warm.new_var();
        warm.add_clause(&[v.positive()]);
        warm.set_search_control(Some(root.control()));
        assert_eq!(warm.solve(&[]), SolveResult::Sat);
        assert_eq!(warm.solve(&[]), SolveResult::Sat);
        let child = root.child_with_limits(GovernorLimits {
            fault_plan: Some(FaultPlan::PanicAt(root.sat_calls() + 1)),
            ..GovernorLimits::default()
        });
        let mut solver = Solver::new();
        let v = solver.new_var();
        solver.add_clause(&[v.positive()]);
        solver.set_search_control(Some(child.control()));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| solver.solve(&[])));
        assert!(unwound.is_err(), "the child's first call must panic");
        // The panic stays scoped to the child's plan: solvers on the
        // root keep working.
        assert_eq!(warm.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn child_cancellation_is_scoped_and_shares_resources() {
        let governor = ResourceGovernor::new(GovernorLimits {
            global_conflicts: Some(50),
            ..GovernorLimits::default()
        });
        let child = governor.child();
        // Cancelling the child does not affect the parent...
        child.cancel();
        assert_eq!(child.trip(), Some(TripReason::Cancelled));
        assert_eq!(governor.trip(), None);
        // ...but the child draws from the parent's shared pool.
        let sibling = governor.child();
        let mut solver = Solver::new();
        pigeonhole(&mut solver, 7);
        solver.set_search_control(Some(sibling.control()));
        assert_eq!(solver.solve(&[]), SolveResult::Unknown);
        assert_eq!(governor.trip(), Some(TripReason::GlobalBudget));
        assert_eq!(sibling.trip(), Some(TripReason::GlobalBudget));
        assert_eq!(governor.remaining_conflicts(), Some(0));
        assert_eq!(sibling.remaining_conflicts(), Some(0));
        // A parent cancellation reaches every child.
        governor.cancel();
        assert_eq!(sibling.hard_trip(), Some(TripReason::Cancelled));
        // Calls made under children count on the shared counter.
        assert_eq!(governor.sat_calls(), sibling.sat_calls());
        assert!(governor.sat_calls() >= 1);
    }

    #[test]
    fn child_limits_layer_under_the_parent() {
        let root = ResourceGovernor::new(GovernorLimits {
            global_conflicts: Some(1_000_000),
            ..GovernorLimits::default()
        });
        // A request-scoped child with a small private fair-share pool.
        let request = root.child_with_limits(GovernorLimits {
            global_conflicts: Some(50),
            ..GovernorLimits::default()
        });
        assert_eq!(request.remaining_conflicts(), Some(50), "tightest pool");
        let mut solver = Solver::new();
        pigeonhole(&mut solver, 7);
        solver.set_search_control(Some(request.control()));
        assert_eq!(solver.solve(&[]), SolveResult::Unknown);
        // The request tripped on its own pool; the root keeps capacity
        // (minus what the request actually spent) and stays untripped.
        assert_eq!(request.trip(), Some(TripReason::GlobalBudget));
        assert_eq!(root.trip(), None);
        let left = root.remaining_conflicts().expect("root pool present");
        assert!(left < 1_000_000, "spend drains the root pool too");
        assert!(left > 0, "a 50-conflict request cannot drain the root");
        // Calls still count on the shared chain-wide counter.
        assert_eq!(root.sat_calls(), request.sat_calls());
    }

    #[test]
    fn child_deadline_expires_without_touching_the_parent() {
        let root = ResourceGovernor::unlimited();
        let request = root.child_with_limits(GovernorLimits {
            timeout: Some(Duration::from_millis(0)),
            ..GovernorLimits::default()
        });
        assert_eq!(request.hard_trip(), Some(TripReason::Deadline));
        assert_eq!(request.remaining_time(), Some(Duration::ZERO));
        assert_eq!(root.trip(), None);
        assert_eq!(root.remaining_time(), None);
    }

    #[test]
    fn unlimited_governor_never_interferes() {
        let governor = ResourceGovernor::unlimited();
        let mut solver = Solver::new();
        pigeonhole(&mut solver, 5);
        solver.set_search_control(Some(governor.control()));
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
        assert!(governor.sat_calls() >= 1);
        assert_eq!(governor.trip(), None);
    }
}
