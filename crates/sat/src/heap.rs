//! Indexed binary max-heap ordering variables by VSIDS activity.
//!
//! Supports decrease/increase-key by tracking each variable's heap
//! position, as required by the CDCL decision heuristic.

use crate::types::Var;

/// A binary max-heap over variables keyed by an external activity array.
///
/// The heap stores variable indices and keeps an inverse index so that
/// membership tests and reordering after activity bumps are O(log n).
#[derive(Clone, Debug, Default)]
pub(crate) struct VarHeap {
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `u32::MAX` if absent.
    index: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl VarHeap {
    pub(crate) fn new() -> VarHeap {
        VarHeap::default()
    }

    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn contains(&self, v: Var) -> bool {
        (v.index() < self.index.len()) && self.index[v.index()] != ABSENT
    }

    /// Grows the inverse index to accommodate `n` variables.
    pub(crate) fn reserve_vars(&mut self, n: usize) {
        if self.index.len() < n {
            self.index.resize(n, ABSENT);
        }
    }

    pub(crate) fn insert(&mut self, v: Var, activity: &[f64]) {
        self.reserve_vars(v.index() + 1);
        if self.contains(v) {
            return;
        }
        let pos = self.heap.len() as u32;
        self.heap.push(v.0);
        self.index[v.index()] = pos;
        self.sift_up(pos as usize, activity);
    }

    /// Restores heap order for `v` after its activity increased.
    pub(crate) fn decrease(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            let pos = self.index[v.index()] as usize;
            self.sift_up(pos, activity);
        }
    }

    /// Removes and returns the variable with maximum activity.
    pub(crate) fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("heap non-empty");
        self.index[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        let item = self.heap[pos];
        while pos > 0 {
            let parent = (pos - 1) >> 1;
            let parent_item = self.heap[parent];
            if activity[item as usize] <= activity[parent_item as usize] {
                break;
            }
            self.heap[pos] = parent_item;
            self.index[parent_item as usize] = pos as u32;
            pos = parent;
        }
        self.heap[pos] = item;
        self.index[item as usize] = pos as u32;
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        let item = self.heap[pos];
        let len = self.heap.len();
        loop {
            let left = 2 * pos + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let child = if right < len
                && activity[self.heap[right] as usize] > activity[self.heap[left] as usize]
            {
                right
            } else {
                left
            };
            let child_item = self.heap[child];
            if activity[child_item as usize] <= activity[item as usize] {
                break;
            }
            self.heap[pos] = child_item;
            self.index[child_item as usize] = pos as u32;
            pos = child;
        }
        self.heap[pos] = item;
        self.index[item as usize] = pos as u32;
    }

    /// Rebuilds the heap from scratch (e.g. after a global rescale).
    #[allow(dead_code)]
    pub(crate) fn rebuild(&mut self, activity: &[f64]) {
        let items: Vec<u32> = self.heap.drain(..).collect();
        for i in &items {
            self.index[*i as usize] = ABSENT;
        }
        for i in items {
            self.insert(Var(i), activity);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(heap: &mut VarHeap, act: &[f64]) -> Vec<usize> {
        let mut out = Vec::new();
        while let Some(v) = heap.pop(act) {
            out.push(v.index());
        }
        out
    }

    #[test]
    fn pops_in_descending_activity_order() {
        let act = [1.0, 5.0, 3.0, 4.0, 2.0];
        let mut heap = VarHeap::new();
        for i in 0..5 {
            heap.insert(Var::from_index(i), &act);
        }
        assert_eq!(drain(&mut heap, &act), vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn decrease_moves_bumped_variable_up() {
        let mut act = [1.0, 2.0, 3.0];
        let mut heap = VarHeap::new();
        for i in 0..3 {
            heap.insert(Var::from_index(i), &act);
        }
        act[0] = 10.0;
        heap.decrease(Var::from_index(0), &act);
        assert_eq!(heap.pop(&act), Some(Var::from_index(0)));
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let act = [1.0];
        let mut heap = VarHeap::new();
        heap.insert(Var::from_index(0), &act);
        heap.insert(Var::from_index(0), &act);
        assert_eq!(heap.len(), 1);
        assert!(heap.contains(Var::from_index(0)));
    }

    #[test]
    fn empty_heap_pops_none() {
        let mut heap = VarHeap::new();
        assert!(heap.is_empty());
        assert_eq!(heap.pop(&[]), None);
    }

    #[test]
    fn rebuild_preserves_content() {
        let act = [4.0, 1.0, 9.0, 2.0];
        let mut heap = VarHeap::new();
        for i in 0..4 {
            heap.insert(Var::from_index(i), &act);
        }
        heap.rebuild(&act);
        assert_eq!(drain(&mut heap, &act), vec![2, 0, 3, 1]);
    }
}
