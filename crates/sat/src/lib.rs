//! # eco-sat
//!
//! A from-scratch CDCL SAT solver purpose-built for the ECO patch
//! engine of *"Efficient Computation of ECO Patch Functions"* (DAC
//! 2018), playing the role MiniSat plays in the paper.
//!
//! Highlights:
//!
//! - **Incremental solving under assumptions** with MiniSat-style
//!   [`Solver::conflict`] final-conflict analysis (`analyze_final`),
//!   which the paper's baseline uses for support extraction.
//! - **Budgets** ([`Solver::set_budget`]) so callers can emulate the
//!   paper's SAT timeouts and fall back to structural patching.
//! - **Pseudo-Boolean sums** ([`PbSum`]) via a binary adder network,
//!   used by the exact `SAT_prune` method to bound patch cost.
//! - **Resolution-proof logging** ([`Solver::enable_proof`]) so Craig
//!   interpolants can be computed for the interpolation-vs-cube
//!   enumeration ablation.
//! - **Resource governance** ([`ResourceGovernor`]): a shared handle
//!   carrying a wall-clock deadline, a global conflict/propagation
//!   pool and a cancellation flag, polled cooperatively from the
//!   search loop ([`Solver::set_search_control`]), plus deterministic
//!   fault injection ([`FaultPlan`]) for robustness testing.
//!
//! # Examples
//!
//! ```
//! use eco_sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[a.positive(), b.positive()]);
//! solver.add_clause(&[a.negative()]);
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! assert!(solver.model_value(b.positive()).is_true());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clause;
mod dimacs;
mod govern;
mod heap;
mod pb;
mod solver;
mod types;

pub use clause::ClauseRef;
pub use dimacs::{parse_dimacs, DimacsInstance, ParseDimacsError};
pub use govern::{FaultPlan, GovernorLimits, ResourceGovernor, SearchControl, TripReason};
pub use pb::PbSum;
pub use solver::{ChainStep, ProofChain, Solver, SolverStats};
pub use types::{LBool, Lit, SolveResult, Var};
