//! Pseudo-Boolean sum encoding via a binary adder network
//! (Warners-style bucket adder), used by the exact support pruner
//! (`SAT_prune`, Sec. 3.4.2 of the paper) to bound patch cost.
//!
//! A weighted sum `Σ wᵢ·xᵢ` is materialized as a vector of binary output
//! bits; strict upper bounds against constants are asserted under an
//! activation literal so that the bound can be tightened incrementally
//! without rebuilding the encoding.

use crate::solver::Solver;
use crate::types::Lit;

/// A bit of the encoded sum: a solver literal or a constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Bit {
    Const(bool),
    Lit(Lit),
}

/// Binary representation (LSB first) of a pseudo-Boolean sum inside a
/// [`Solver`].
///
/// # Examples
///
/// ```
/// use eco_sat::{Solver, PbSum, SolveResult};
///
/// let mut s = Solver::new();
/// let x = s.new_var();
/// let y = s.new_var();
/// let sum = PbSum::encode(&mut s, &[(x.positive(), 3), (y.positive(), 5)]);
/// let act = s.new_var().positive();
/// sum.assert_less_under(&mut s, 5, act);
/// // With the bound active, picking y (weight 5) is impossible.
/// assert_eq!(s.solve(&[act, y.positive()]), SolveResult::Unsat);
/// assert_eq!(s.solve(&[act, x.positive()]), SolveResult::Sat);
/// ```
#[derive(Clone, Debug)]
pub struct PbSum {
    bits: Vec<Bit>,
}

fn and_gate(s: &mut Solver, a: Bit, b: Bit) -> Bit {
    match (a, b) {
        (Bit::Const(false), _) | (_, Bit::Const(false)) => Bit::Const(false),
        (Bit::Const(true), x) | (x, Bit::Const(true)) => x,
        (Bit::Lit(a), Bit::Lit(b)) => {
            let o = s.new_var().positive();
            s.add_clause(&[!o, a]);
            s.add_clause(&[!o, b]);
            s.add_clause(&[o, !a, !b]);
            Bit::Lit(o)
        }
    }
}

fn or_gate(s: &mut Solver, a: Bit, b: Bit) -> Bit {
    match (a, b) {
        (Bit::Const(true), _) | (_, Bit::Const(true)) => Bit::Const(true),
        (Bit::Const(false), x) | (x, Bit::Const(false)) => x,
        (Bit::Lit(a), Bit::Lit(b)) => {
            let o = s.new_var().positive();
            s.add_clause(&[o, !a]);
            s.add_clause(&[o, !b]);
            s.add_clause(&[!o, a, b]);
            Bit::Lit(o)
        }
    }
}

fn xor_gate(s: &mut Solver, a: Bit, b: Bit) -> Bit {
    match (a, b) {
        (Bit::Const(false), x) | (x, Bit::Const(false)) => x,
        (Bit::Const(true), Bit::Const(true)) => Bit::Const(false),
        (Bit::Const(true), Bit::Lit(l)) | (Bit::Lit(l), Bit::Const(true)) => Bit::Lit(!l),
        (Bit::Lit(a), Bit::Lit(b)) => {
            let o = s.new_var().positive();
            s.add_clause(&[!o, a, b]);
            s.add_clause(&[!o, !a, !b]);
            s.add_clause(&[o, !a, b]);
            s.add_clause(&[o, a, !b]);
            Bit::Lit(o)
        }
    }
}

/// Majority of three (the carry function of a full adder).
fn maj_gate(s: &mut Solver, a: Bit, b: Bit, c: Bit) -> Bit {
    match (a, b, c) {
        (Bit::Const(false), x, y) | (x, Bit::Const(false), y) | (x, y, Bit::Const(false)) => {
            and_gate(s, x, y)
        }
        (Bit::Const(true), x, y) | (x, Bit::Const(true), y) | (x, y, Bit::Const(true)) => {
            or_gate(s, x, y)
        }
        (Bit::Lit(a), Bit::Lit(b), Bit::Lit(c)) => {
            let o = s.new_var().positive();
            s.add_clause(&[!o, a, b]);
            s.add_clause(&[!o, a, c]);
            s.add_clause(&[!o, b, c]);
            s.add_clause(&[o, !a, !b]);
            s.add_clause(&[o, !a, !c]);
            s.add_clause(&[o, !b, !c]);
            Bit::Lit(o)
        }
    }
}

impl PbSum {
    /// Encodes `Σ weight·literal` as adder-network output bits.
    ///
    /// Terms with zero weight are ignored. The number of auxiliary
    /// variables and clauses is `O(n · log maxweight)`.
    pub fn encode(s: &mut Solver, terms: &[(Lit, u64)]) -> PbSum {
        let max_bits = terms
            .iter()
            .map(|&(_, w)| 64 - w.leading_zeros() as usize)
            .max()
            .unwrap_or(0);
        let mut buckets: Vec<Vec<Bit>> = vec![Vec::new(); max_bits + 1];
        for &(l, w) in terms {
            for (bit, bucket) in buckets.iter_mut().enumerate().take(64) {
                if w >> bit & 1 == 1 {
                    bucket.push(Bit::Lit(l));
                }
            }
        }
        let mut bit = 0;
        while bit < buckets.len() {
            while buckets[bit].len() >= 3 {
                let a = buckets[bit].pop().expect("len >= 3");
                let b = buckets[bit].pop().expect("len >= 2");
                let c = buckets[bit].pop().expect("len >= 1");
                let sum1 = xor_gate(s, a, b);
                let sum = xor_gate(s, sum1, c);
                let carry = maj_gate(s, a, b, c);
                buckets[bit].push(sum);
                if bit + 1 == buckets.len() {
                    buckets.push(Vec::new());
                }
                buckets[bit + 1].push(carry);
            }
            if buckets[bit].len() == 2 {
                let a = buckets[bit].pop().expect("len == 2");
                let b = buckets[bit].pop().expect("len == 1");
                let sum = xor_gate(s, a, b);
                let carry = and_gate(s, a, b);
                buckets[bit].push(sum);
                if bit + 1 == buckets.len() {
                    buckets.push(Vec::new());
                }
                buckets[bit + 1].push(carry);
            }
            bit += 1;
        }
        let bits = buckets
            .into_iter()
            .map(|b| b.first().copied().unwrap_or(Bit::Const(false)))
            .collect();
        PbSum { bits }
    }

    /// Number of output bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Asserts `sum < bound` whenever `activation` is true.
    ///
    /// Multiple bounds can be layered with distinct activation literals;
    /// assuming the literal of the tightest bound enforces it. Passing
    /// `bound == 0` forces `¬activation`.
    pub fn assert_less_under(&self, s: &mut Solver, bound: u64, activation: Lit) {
        // ge(i) = (sum[i..0] >= bound[i..0]); the recurrence consumes the
        // lower-suffix result, so fold LSB -> MSB.
        let mut ge = Bit::Const(true);
        for i in 0..self.bits.len().max(64 - bound.leading_zeros() as usize) {
            let sum_bit = self.bits.get(i).copied().unwrap_or(Bit::Const(false));
            let bound_bit = bound >> i & 1 == 1;
            ge = if bound_bit {
                and_gate(s, sum_bit, ge)
            } else {
                or_gate(s, sum_bit, ge)
            };
        }
        match ge {
            Bit::Const(true) => {
                s.add_clause(&[!activation]);
            }
            Bit::Const(false) => {}
            Bit::Lit(l) => {
                s.add_clause(&[!activation, !l]);
            }
        }
    }

    /// Reads the value of the sum from the solver's current model.
    ///
    /// # Panics
    ///
    /// Panics when called without a complete model (no prior `Sat`).
    pub fn model_value(&self, s: &Solver) -> u64 {
        let mut value = 0u64;
        for (i, &b) in self.bits.iter().enumerate() {
            let set = match b {
                Bit::Const(c) => c,
                Bit::Lit(l) => s
                    .model_value(l)
                    .to_option()
                    .expect("model must be complete"),
            };
            if set {
                value |= 1 << i;
            }
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{SolveResult, Var};

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    /// Exhaustively checks the encoded sum against the arithmetic sum.
    fn check_sum(weights: &[u64]) {
        let mut s = Solver::new();
        let xs = vars(&mut s, weights.len());
        let terms: Vec<(Lit, u64)> = xs
            .iter()
            .zip(weights)
            .map(|(&v, &w)| (v.positive(), w))
            .collect();
        let sum = PbSum::encode(&mut s, &terms);
        for mask in 0..(1u32 << weights.len()) {
            let assumptions: Vec<Lit> = xs
                .iter()
                .enumerate()
                .map(|(i, &v)| v.lit(mask >> i & 1 == 0))
                .collect();
            assert_eq!(s.solve(&assumptions), SolveResult::Sat);
            let expect: u64 = weights
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &w)| w)
                .sum();
            assert_eq!(
                sum.model_value(&s),
                expect,
                "mask {mask:b} weights {weights:?}"
            );
        }
    }

    #[test]
    fn unit_weights_count_correctly() {
        check_sum(&[1, 1, 1, 1, 1]);
    }

    #[test]
    fn mixed_weights_sum_correctly() {
        check_sum(&[3, 5, 7, 2]);
    }

    #[test]
    fn large_weights_sum_correctly() {
        check_sum(&[1000, 999, 4096]);
    }

    #[test]
    fn zero_weight_terms_are_ignored() {
        check_sum(&[0, 4, 0]);
    }

    #[test]
    fn bound_excludes_expensive_sets() {
        let mut s = Solver::new();
        let xs = vars(&mut s, 3);
        let weights = [4u64, 5, 6];
        let terms: Vec<(Lit, u64)> = xs
            .iter()
            .zip(&weights)
            .map(|(&v, &w)| (v.positive(), w))
            .collect();
        let sum = PbSum::encode(&mut s, &terms);
        let act = s.new_var().positive();
        sum.assert_less_under(&mut s, 10, act);
        // 4 + 5 = 9 < 10 is fine.
        assert_eq!(
            s.solve(&[act, xs[0].positive(), xs[1].positive(), xs[2].negative()]),
            SolveResult::Sat
        );
        // 5 + 6 = 11 >= 10 is excluded.
        assert_eq!(
            s.solve(&[act, xs[1].positive(), xs[2].positive()]),
            SolveResult::Unsat
        );
        // Without the activation literal nothing is constrained.
        assert_eq!(
            s.solve(&[xs[0].positive(), xs[1].positive(), xs[2].positive()]),
            SolveResult::Sat
        );
    }

    #[test]
    fn tightening_bounds_with_multiple_activations() {
        let mut s = Solver::new();
        let xs = vars(&mut s, 4);
        let terms: Vec<(Lit, u64)> = xs.iter().map(|&v| (v.positive(), 1)).collect();
        let sum = PbSum::encode(&mut s, &terms);
        let a3 = s.new_var().positive();
        let a2 = s.new_var().positive();
        sum.assert_less_under(&mut s, 3, a3);
        sum.assert_less_under(&mut s, 2, a2);
        // At most 2 selected under a3.
        assert_eq!(
            s.solve(&[a3, xs[0].positive(), xs[1].positive(), xs[2].positive()]),
            SolveResult::Unsat
        );
        assert_eq!(
            s.solve(&[a3, xs[0].positive(), xs[1].positive()]),
            SolveResult::Sat
        );
        // At most 1 under the tighter a2.
        assert_eq!(
            s.solve(&[a2, xs[0].positive(), xs[1].positive()]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(&[a2, xs[0].positive()]), SolveResult::Sat);
    }

    #[test]
    fn zero_bound_forbids_activation() {
        let mut s = Solver::new();
        let x = s.new_var();
        let sum = PbSum::encode(&mut s, &[(x.positive(), 1)]);
        let act = s.new_var().positive();
        sum.assert_less_under(&mut s, 0, act);
        assert_eq!(s.solve(&[act]), SolveResult::Unsat);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn empty_sum_is_zero() {
        let mut s = Solver::new();
        let sum = PbSum::encode(&mut s, &[]);
        let act = s.new_var().positive();
        sum.assert_less_under(&mut s, 1, act);
        assert_eq!(s.solve(&[act]), SolveResult::Sat);
        assert_eq!(sum.model_value(&s), 0);
    }
}
