//! A MiniSat-style CDCL SAT solver.
//!
//! Features required by the ECO engine:
//!
//! - incremental solving under assumptions ([`Solver::solve`]),
//! - final-conflict analysis over assumptions ([`Solver::conflict`],
//!   the `analyze_final` of MiniSat used by the paper's baseline),
//! - conflict/propagation budgets for timeout-style `Unknown` results,
//! - two-watched-literal propagation, 1-UIP learning with clause
//!   minimization, VSIDS decisions, phase saving, Luby restarts and
//!   activity-based learnt-clause reduction,
//! - optional resolution-proof logging for Craig interpolation
//!   ([`Solver::enable_proof`]).

use crate::clause::{ClauseDb, ClauseRef};
use crate::govern::SearchControl;
use crate::heap::VarHeap;
use crate::types::{LBool, Lit, SolveResult, Var};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many conflicts may pass between [`SearchControl::consume`]
/// reports from the search loop.
const CONTROL_CHECK_CONFLICTS: u64 = 128;
/// How many propagations may pass between [`SearchControl::consume`]
/// reports (the conflict-free bound on check latency).
const CONTROL_CHECK_PROPAGATIONS: u64 = 8_192;

/// Statistics accumulated over the lifetime of a [`Solver`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of `solve` invocations.
    pub solves: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses deleted by database reduction.
    pub deleted_learnts: u64,
    /// Learnt clauses (including units) added by conflict analysis.
    pub learned_clauses: u64,
    /// Peak number of live learnt clauses in the database.
    pub peak_learnts: u64,
    /// Wall-clock time spent inside `solve`, accumulated only while
    /// timing is enabled via [`Solver::set_timing`] (zero otherwise).
    pub solve_time: Duration,
}

impl SolverStats {
    /// Counter deltas accumulated since an `earlier` snapshot of the
    /// same solver. `peak_learnts` is a high-water mark, not a counter,
    /// so the later snapshot's value is kept as-is.
    pub fn since(&self, earlier: SolverStats) -> SolverStats {
        SolverStats {
            solves: self.solves.saturating_sub(earlier.solves),
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            deleted_learnts: self.deleted_learnts.saturating_sub(earlier.deleted_learnts),
            learned_clauses: self.learned_clauses.saturating_sub(earlier.learned_clauses),
            peak_learnts: self.peak_learnts,
            solve_time: self.solve_time.saturating_sub(earlier.solve_time),
        }
    }
}

impl std::fmt::Display for SolverStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "solves={} decisions={} propagations={} conflicts={} restarts={} deleted={} \
             learned={} peak_learnts={} solve_time={:.3}s",
            self.solves,
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.deleted_learnts,
            self.learned_clauses,
            self.peak_learnts,
            self.solve_time.as_secs_f64()
        )
    }
}

/// One step of a recorded resolution chain: resolve the running
/// resolvent with `clause` on pivot variable `pivot`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainStep {
    /// The pivot variable of this resolution step.
    pub pivot: Var,
    /// The antecedent clause resolved in.
    pub clause: ClauseRef,
}

/// Resolution derivation of a learnt clause: the head clause resolved
/// successively with each [`ChainStep`].
#[derive(Clone, Debug, Default)]
pub struct ProofChain {
    /// First antecedent (the conflicting clause when learning).
    pub head: Option<ClauseRef>,
    /// Subsequent resolution steps in order.
    pub steps: Vec<ChainStep>,
}

#[derive(Clone, Debug, Default)]
struct ProofLog {
    /// `chains[cref]` is the derivation of learnt clause `cref`
    /// (`None` head for original clauses).
    chains: Vec<ProofChain>,
    /// Clause partition tags for interpolation (user-defined meaning).
    tags: Vec<u8>,
}

impl ProofLog {
    fn ensure(&mut self, cref: ClauseRef) {
        let need = cref.index() + 1;
        if self.chains.len() < need {
            self.chains.resize_with(need, ProofChain::default);
            self.tags.resize(need, 0);
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Incremental CDCL SAT solver.
///
/// # Examples
///
/// Solve `(a ∨ b) ∧ (¬a ∨ b) ∧ (¬b ∨ c)` under the assumption `¬c`:
///
/// ```
/// use eco_sat::{Solver, SolveResult};
///
/// let mut s = Solver::new();
/// let (a, b, c) = (s.new_var(), s.new_var(), s.new_var());
/// s.add_clause(&[a.positive(), b.positive()]);
/// s.add_clause(&[a.negative(), b.positive()]);
/// s.add_clause(&[b.negative(), c.positive()]);
/// assert_eq!(s.solve(&[]), SolveResult::Sat);
/// assert_eq!(s.solve(&[c.negative()]), SolveResult::Unsat);
/// // The failed assumption set explains the conflict:
/// assert_eq!(s.conflict(), &[c.negative()]);
/// ```
#[derive(Clone, Debug)]
pub struct Solver {
    db: ClauseDb,
    /// Number of live original (problem) clauses.
    num_original: usize,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    decision_var: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    var_decay: f64,
    cla_inc: f64,
    cla_decay: f64,
    order: VarHeap,
    seen: Vec<u8>,
    analyze_stack: Vec<Lit>,
    analyze_toclear: Vec<Lit>,
    lbd_stamp: Vec<u32>,
    lbd_counter: u32,
    ok: bool,
    model: Vec<LBool>,
    conflict: Vec<Lit>,
    conflict_budget: Option<u64>,
    propagation_budget: Option<u64>,
    budget_conflicts: u64,
    budget_propagations: u64,
    next_reduce: u64,
    num_reduces: u64,
    restart_base: u64,
    stats: SolverStats,
    proof: Option<ProofLog>,
    final_conflict: Option<ClauseRef>,
    chain_scratch: ProofChain,
    control: Option<Arc<dyn SearchControl>>,
    control_last_conflicts: u64,
    control_last_propagations: u64,
    control_stop: bool,
    timing: bool,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with no variables or clauses.
    pub fn new() -> Solver {
        Solver {
            db: ClauseDb::new(),
            num_original: 0,
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            decision_var: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            var_decay: 0.95,
            cla_inc: 1.0,
            cla_decay: 0.999,
            order: VarHeap::new(),
            seen: Vec::new(),
            analyze_stack: Vec::new(),
            analyze_toclear: Vec::new(),
            lbd_stamp: Vec::new(),
            lbd_counter: 0,
            ok: true,
            model: Vec::new(),
            conflict: Vec::new(),
            conflict_budget: None,
            propagation_budget: None,
            budget_conflicts: 0,
            budget_propagations: 0,
            next_reduce: 30_000,
            num_reduces: 0,
            restart_base: 100,
            stats: SolverStats::default(),
            proof: None,
            final_conflict: None,
            chain_scratch: ProofChain::default(),
            control: None,
            control_last_conflicts: 0,
            control_last_propagations: 0,
            control_stop: false,
            timing: false,
        }
    }

    /// Enables resolution-proof logging for Craig interpolation.
    ///
    /// Must be called before any clause is added. In proof mode the
    /// solver keeps every learnt clause (no database reduction), does not
    /// simplify added clauses, and records a [`ProofChain`] for each
    /// learnt clause, so an UNSAT answer at decision level zero carries a
    /// complete refutation.
    ///
    /// # Panics
    ///
    /// Panics if clauses have already been added.
    pub fn enable_proof(&mut self) {
        assert!(
            self.db.len() == 0 && self.trail.is_empty(),
            "proof logging must be enabled on a fresh solver"
        );
        self.proof = Some(ProofLog::default());
    }

    /// Returns `true` if proof logging is active.
    pub fn proof_enabled(&self) -> bool {
        self.proof.is_some()
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live problem (non-learnt) clauses.
    pub fn num_clauses(&self) -> usize {
        self.num_original
    }

    /// Number of live learnt clauses.
    pub fn num_learnts(&self) -> usize {
        self.db.num_learnt
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Enables (or disables) wall-clock timing of [`Solver::solve`]
    /// calls, accumulated into [`SolverStats::solve_time`].
    ///
    /// Timing is off by default so unobserved runs never touch the
    /// clock; observers that want per-call latency switch it on.
    pub fn set_timing(&mut self, enabled: bool) {
        self.timing = enabled;
    }

    /// `false` once the clause set has been proven unsatisfiable outright
    /// (without assumptions).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Creates a fresh decision variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(true); // default phase: assign false
        self.decision_var.push(true);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.seen.push(0);
        self.lbd_stamp.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v, &self.activity);
        v
    }

    /// Sets the preferred phase of `v`: the value tried first when the
    /// solver branches on it.
    pub fn set_polarity(&mut self, v: Var, prefer_true: bool) {
        self.polarity[v.index()] = !prefer_true;
    }

    /// Marks whether `v` may be chosen as a decision variable. Frozen
    /// (non-decision) variables are only ever assigned by propagation —
    /// useful for auxiliary encodings whose values are implied.
    pub fn set_decision_var(&mut self, v: Var, decision: bool) {
        self.decision_var[v.index()] = decision;
        if decision && self.assigns[v.index()].is_undef() {
            self.order.insert(v, &self.activity);
        }
    }

    /// Limits the next [`Solver::solve`] calls to roughly the given number
    /// of conflicts and/or propagations; exceeding either yields
    /// [`SolveResult::Unknown`]. Budgets are cumulative from the moment of
    /// this call.
    pub fn set_budget(&mut self, conflicts: Option<u64>, propagations: Option<u64>) {
        self.conflict_budget = conflicts.map(|c| self.budget_conflicts + c);
        self.propagation_budget = propagations.map(|p| self.budget_propagations + p);
    }

    /// Removes any budget set by [`Solver::set_budget`].
    pub fn clear_budget(&mut self) {
        self.conflict_budget = None;
        self.propagation_budget = None;
    }

    /// Attaches (or with `None` detaches) a cooperative stop hook.
    ///
    /// The hook is asked once at the start of every [`Solver::solve`]
    /// and then periodically from the search loop with the conflicts
    /// and propagations spent since its previous report; when it
    /// returns `true` the current call answers
    /// [`SolveResult::Unknown`]. A [`ResourceGovernor`](crate::ResourceGovernor)
    /// shared across several solvers implements deadlines, global
    /// budget pools, cancellation, and fault injection this way.
    pub fn set_search_control(&mut self, control: Option<Arc<dyn SearchControl>>) {
        self.control = control;
        self.control_last_conflicts = self.budget_conflicts;
        self.control_last_propagations = self.budget_propagations;
        self.control_stop = false;
    }

    /// Whether the most recent [`Solver::solve`] was stopped by the
    /// attached [`SearchControl`] (as opposed to finishing or running
    /// out of a local [`Solver::set_budget`] budget).
    pub fn control_stopped(&self) -> bool {
        self.control_stop
    }

    /// Reports outstanding conflict/propagation deltas to the control
    /// hook, recording a pending stop if it asks for one.
    fn control_flush(&mut self) {
        if let Some(control) = &self.control {
            let dc = self.budget_conflicts - self.control_last_conflicts;
            let dp = self.budget_propagations - self.control_last_propagations;
            if dc > 0 || dp > 0 {
                self.control_last_conflicts = self.budget_conflicts;
                self.control_last_propagations = self.budget_propagations;
                if control.consume(dc, dp) {
                    self.control_stop = true;
                }
            }
        }
    }

    /// Periodic in-search control check: flushes deltas to the hook
    /// once enough work has accumulated. Returns `true` when the
    /// current call must stop.
    fn control_check(&mut self) -> bool {
        if self.control.is_none() {
            return false;
        }
        let dc = self.budget_conflicts - self.control_last_conflicts;
        let dp = self.budget_propagations - self.control_last_propagations;
        if dc >= CONTROL_CHECK_CONFLICTS || dp >= CONTROL_CHECK_PROPAGATIONS {
            self.control_flush();
        }
        self.control_stop
    }

    #[inline]
    fn value_lit(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()] ^ l.is_negated()
    }

    /// Current assignment of a literal (valid during/after search at
    /// level zero; use [`Solver::model_value`] for models).
    pub fn value(&self, l: Lit) -> LBool {
        self.value_lit(l)
    }

    /// Value of `l` in the most recent model (after a `Sat` answer).
    pub fn model_value(&self, l: Lit) -> LBool {
        match self.model.get(l.var().index()) {
            Some(&v) => v ^ l.is_negated(),
            None => LBool::Undef,
        }
    }

    /// The most recent model as a per-variable assignment.
    pub fn model(&self) -> &[LBool] {
        &self.model
    }

    /// After an `Unsat` answer: the subset of the assumptions (in the
    /// polarity they were passed) that is sufficient for
    /// unsatisfiability. Empty when the clause set itself is
    /// unsatisfiable.
    ///
    /// This is MiniSat's `analyze_final` result, used directly by the
    /// paper's baseline support computation.
    pub fn conflict(&self) -> &[Lit] {
        &self.conflict
    }

    /// Adds a clause. Returns `false` if the clause set is now known
    /// unsatisfiable (the solver stays usable but every solve returns
    /// `Unsat`).
    ///
    /// # Panics
    ///
    /// Panics if called while the solver is not at decision level zero
    /// (i.e. from inside a search callback) or if a literal references a
    /// variable that was never created.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.add_clause_tagged(lits, 0).0
    }

    /// Adds a clause carrying a proof-partition tag (meaningful only in
    /// proof mode; see [`Solver::enable_proof`]). Returns the ok-flag and
    /// the allocated clause reference, when one was created.
    pub fn add_clause_tagged(&mut self, lits: &[Lit], tag: u8) -> (bool, Option<ClauseRef>) {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        for l in lits {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l:?} out of range"
            );
        }
        if !self.ok {
            return (false, None);
        }
        let mut ps: Vec<Lit> = lits.to_vec();
        ps.sort_unstable();
        ps.dedup();
        // Tautology check.
        for w in ps.windows(2) {
            if w[0] == !w[1] {
                return (true, None);
            }
        }
        if self.proof.is_none() {
            // Level-0 simplification (not proof-safe, so skipped there).
            let mut keep = Vec::with_capacity(ps.len());
            for &l in &ps {
                match self.value_lit(l) {
                    LBool::True => return (true, None),
                    LBool::False => {}
                    LBool::Undef => keep.push(l),
                }
            }
            ps = keep;
        }
        match ps.len() {
            0 => {
                self.ok = false;
                (false, None)
            }
            1 => {
                if self.proof.is_some() {
                    let cref = self.db.alloc(ps.clone(), false, 0);
                    self.num_original += 1;
                    self.tag_clause(cref, tag, ProofChain::default());
                    match self.value_lit(ps[0]) {
                        LBool::True => (true, Some(cref)),
                        LBool::False => {
                            // Immediate contradiction with an earlier unit.
                            self.final_conflict = Some(cref);
                            self.ok = false;
                            (false, Some(cref))
                        }
                        LBool::Undef => {
                            self.unchecked_enqueue(ps[0], Some(cref));
                            let confl = self.propagate();
                            if let Some(c) = confl {
                                self.final_conflict = Some(c);
                                self.ok = false;
                                (false, Some(cref))
                            } else {
                                (true, Some(cref))
                            }
                        }
                    }
                } else {
                    self.unchecked_enqueue(ps[0], None);
                    if self.propagate().is_some() {
                        self.ok = false;
                        (false, None)
                    } else {
                        (true, None)
                    }
                }
            }
            _ => {
                let cref = self.db.alloc(ps, false, 0);
                self.num_original += 1;
                if self.proof.is_some() {
                    self.tag_clause(cref, tag, ProofChain::default());
                }
                self.attach(cref);
                (true, Some(cref))
            }
        }
    }

    fn tag_clause(&mut self, cref: ClauseRef, tag: u8, chain: ProofChain) {
        if let Some(p) = self.proof.as_mut() {
            p.ensure(cref);
            p.tags[cref.index()] = tag;
            p.chains[cref.index()] = chain;
        }
    }

    /// The proof-partition tag of a clause (0 unless set).
    pub fn clause_tag(&self, cref: ClauseRef) -> u8 {
        self.proof
            .as_ref()
            .and_then(|p| p.tags.get(cref.index()).copied())
            .unwrap_or(0)
    }

    /// The literals of a live clause.
    pub fn clause_lits(&self, cref: ClauseRef) -> &[Lit] {
        &self.db.get(cref).lits
    }

    /// `true` when the clause was learnt (derived) rather than given.
    pub fn clause_is_learnt(&self, cref: ClauseRef) -> bool {
        self.db.get(cref).learnt
    }

    /// The recorded derivation of a learnt clause (proof mode only).
    pub fn proof_chain(&self, cref: ClauseRef) -> Option<&ProofChain> {
        self.proof.as_ref().map(|p| &p.chains[cref.index()])
    }

    /// After an `Unsat` answer with no assumptions in proof mode: the
    /// clause that is conflicting at decision level zero. The refutation
    /// is this clause resolved against the reasons of its (all false)
    /// literals, transitively.
    pub fn final_conflict_clause(&self) -> Option<ClauseRef> {
        self.final_conflict
    }

    /// The reason clause that propagated the current value of `v`
    /// (valid for level-zero inspection after solving in proof mode).
    pub fn var_reason(&self, v: Var) -> Option<ClauseRef> {
        self.reason[v.index()]
    }

    /// Total clause-arena length, covering every [`ClauseRef`] ever
    /// allocated (proof mode never recycles slots, so indices
    /// `0..proof_arena_len()` enumerate the resolution DAG in
    /// topological order).
    pub fn proof_arena_len(&self) -> usize {
        self.db.arena_len()
    }

    /// The level-zero prefix of the assignment trail, in propagation
    /// order. After an UNSAT answer the solver sits at level zero, so
    /// this is the full set of derived facts backing the refutation.
    pub fn trail_level0(&self) -> &[Lit] {
        let end = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        &self.trail[..end]
    }

    fn attach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = self.db.get(cref);
            (c.lits[0], c.lits[1])
        };
        self.watches[(!l0).index()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).index()].push(Watcher { cref, blocker: l0 });
    }

    fn detach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = self.db.get(cref);
            (c.lits[0], c.lits[1])
        };
        for w in [(!l0).index(), (!l1).index()] {
            let list = &mut self.watches[w];
            let pos = list
                .iter()
                .position(|watcher| watcher.cref == cref)
                .expect("watcher must exist");
            list.swap_remove(pos);
        }
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn unchecked_enqueue(&mut self, p: Lit, from: Option<ClauseRef>) {
        debug_assert!(self.value_lit(p).is_undef());
        let v = p.var().index();
        self.assigns[v] = LBool::from(!p.is_negated());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = from;
        self.trail.push(p);
    }

    /// Propagates all enqueued facts; returns a conflicting clause if one
    /// arises.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut confl = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            self.budget_propagations += 1;
            let mut i = 0;
            // Take the watch list to appease the borrow checker; indices
            // into `self.watches[p]` are edited in place.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            'watchers: while i < ws.len() {
                let Watcher { cref, blocker } = ws[i];
                if self.value_lit(blocker).is_true() {
                    i += 1;
                    continue;
                }
                let false_lit = !p;
                {
                    let c = self.db.get_mut(cref);
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.db.get(cref).lits[0];
                if first != blocker && self.value_lit(first).is_true() {
                    ws[i] = Watcher {
                        cref,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.db.get(cref).lits.len();
                for k in 2..len {
                    let lk = self.db.get(cref).lits[k];
                    if !self.value_lit(lk).is_false() {
                        self.db.get_mut(cref).lits.swap(1, k);
                        self.watches[(!lk).index()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                ws[i] = Watcher {
                    cref,
                    blocker: first,
                };
                i += 1;
                if self.value_lit(first).is_false() {
                    confl = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            let mut existing = std::mem::take(&mut self.watches[p.index()]);
            if existing.is_empty() {
                self.watches[p.index()] = ws;
            } else {
                // New watchers may have been appended for `p` while we held
                // its list (self-referential clause movement).
                ws.append(&mut existing);
                self.watches[p.index()] = ws;
            }
            if confl.is_some() {
                break;
            }
        }
        confl
    }

    fn var_bump_activity(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.decrease(v, &self.activity);
    }

    fn var_decay_activity(&mut self) {
        self.var_inc /= self.var_decay;
    }

    fn cla_bump_activity(&mut self, cref: ClauseRef) {
        let c = self.db.get_mut(cref);
        c.activity += self.cla_inc as f32;
        if c.activity > 1e20 {
            let refs = self.db.learnt_refs();
            for r in refs {
                self.db.get_mut(r).activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn cla_decay_activity(&mut self) {
        self.cla_inc /= self.cla_decay;
    }

    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_counter += 1;
        let stamp = self.lbd_counter;
        let mut lbd = 0;
        let n = self.lbd_stamp.len();
        for &l in lits {
            let lv = self.level[l.var().index()] as usize;
            if lv > 0 && self.lbd_stamp[lv % n] != stamp {
                self.lbd_stamp[lv % n] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// Analyzes a conflict; returns the learnt clause (first literal is
    /// the asserting literal) and the backtrack level. Records the
    /// resolution chain into `chain_scratch` when proof mode is active.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::UNDEF];
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let proof = self.proof.is_some();
        self.chain_scratch.head = Some(confl);
        self.chain_scratch.steps.clear();

        loop {
            self.cla_bump_activity(confl);
            let start = usize::from(p.is_some());
            let n = self.db.get(confl).lits.len();
            for k in start..n {
                let q = self.db.get(confl).lits[k];
                let v = q.var();
                if self.seen[v.index()] == 0 {
                    if self.level[v.index()] > 0 {
                        self.var_bump_activity(v);
                        self.seen[v.index()] = 1;
                        if self.level[v.index()] as usize >= self.decision_level() {
                            path_count += 1;
                        } else {
                            learnt.push(q);
                        }
                    } else if proof {
                        // Dropping a false level-0 literal is an implicit
                        // resolution with its unit derivation; keeping it
                        // in the clause keeps the recorded chain exact.
                        // The literal is harmless (permanently false).
                        self.seen[v.index()] = 1;
                        learnt.push(q);
                    }
                }
            }
            // Select the next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] != 0 {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = 0;
            path_count -= 1;
            if path_count == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("non-decision must have a reason");
            if proof {
                self.chain_scratch.steps.push(ChainStep {
                    pivot: pl.var(),
                    clause: confl,
                });
            }
        }
        learnt[0] = !p.expect("asserting literal exists");

        // Recursive (deep) conflict clause minimization, MiniSat-style.
        // Skipped in proof mode to keep resolution chains exact.
        self.analyze_toclear.clear();
        self.analyze_toclear.extend_from_slice(&learnt);
        if !proof {
            let abstract_levels: u32 = learnt[1..]
                .iter()
                .fold(0, |acc, l| acc | self.abstract_level(l.var()));
            let mut j = 1;
            for i in 1..learnt.len() {
                let l = learnt[i];
                let keep = self.reason[l.var().index()].is_none()
                    || !self.lit_redundant(l, abstract_levels);
                if keep {
                    learnt[j] = l;
                    j += 1;
                }
            }
            learnt.truncate(j);
        }
        for i in 0..self.analyze_toclear.len() {
            self.seen[self.analyze_toclear[i].var().index()] = 0;
        }

        // Compute the backtrack level: the second highest level in the
        // learnt clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };
        (learnt, bt)
    }

    #[inline]
    fn abstract_level(&self, v: Var) -> u32 {
        1 << (self.level[v.index()] & 31)
    }

    /// MiniSat's `litRedundant`: checks whether `p` (a literal of the
    /// learnt clause) is implied by other marked literals, walking
    /// reasons transitively. Marks visited literals in `seen` /
    /// `analyze_toclear`.
    fn lit_redundant(&mut self, p: Lit, abstract_levels: u32) -> bool {
        self.analyze_stack.clear();
        self.analyze_stack.push(p);
        let top = self.analyze_toclear.len();
        while let Some(q) = self.analyze_stack.pop() {
            let cref = self.reason[q.var().index()].expect("stacked literals have reasons");
            let n = self.db.get(cref).lits.len();
            for k in 1..n {
                let l = self.db.get(cref).lits[k];
                let v = l.var();
                if self.seen[v.index()] == 0 && self.level[v.index()] > 0 {
                    if self.reason[v.index()].is_some()
                        && self.abstract_level(v) & abstract_levels != 0
                    {
                        self.seen[v.index()] = 1;
                        self.analyze_stack.push(l);
                        self.analyze_toclear.push(l);
                    } else {
                        for j in top..self.analyze_toclear.len() {
                            self.seen[self.analyze_toclear[j].var().index()] = 0;
                        }
                        self.analyze_toclear.truncate(top);
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Computes the set of assumptions responsible for forcing `p` false
    /// (MiniSat `analyzeFinal`). `p` is the failed assumption in its
    /// original polarity; the result (in `self.conflict`) lists failed
    /// assumptions in original polarity.
    fn analyze_final(&mut self, p: Lit) {
        self.conflict.clear();
        self.conflict.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = 1;
        let start = self.trail_lim[0];
        for i in (start..self.trail.len()).rev() {
            let x = self.trail[i];
            let xv = x.var().index();
            if self.seen[xv] == 0 {
                continue;
            }
            match self.reason[xv] {
                None => {
                    debug_assert!(self.level[xv] > 0);
                    // A decision here is an asserted assumption.
                    self.conflict.push(x);
                }
                Some(r) => {
                    let n = self.db.get(r).lits.len();
                    for k in 1..n {
                        let q = self.db.get(r).lits[k];
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = 1;
                        }
                    }
                }
            }
            self.seen[xv] = 0;
        }
        self.seen[p.var().index()] = 0;
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.assigns[v.index()] = LBool::Undef;
            // Phase saving.
            self.polarity[v.index()] = l.is_negated();
            self.reason[v.index()] = None;
            if !self.order.contains(v) && self.decision_var[v.index()] {
                self.order.insert(v, &self.activity);
            }
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        loop {
            let v = self.order.pop(&self.activity)?;
            if self.assigns[v.index()].is_undef() && self.decision_var[v.index()] {
                return Some(v.lit(self.polarity[v.index()]));
            }
        }
    }

    fn reduce_db(&mut self) {
        if self.proof.is_some() {
            return; // keep everything for the refutation
        }
        let mut refs = self.db.learnt_refs();
        // Sort so the clauses to remove come first: high LBD, low activity.
        refs.sort_by(|&a, &b| {
            let ca = self.db.get(a);
            let cb = self.db.get(b);
            cb.lbd.cmp(&ca.lbd).then(
                ca.activity
                    .partial_cmp(&cb.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let target = refs.len() / 2;
        let mut removed = 0;
        for &r in &refs {
            if removed >= target {
                break;
            }
            let c = self.db.get(r);
            if c.lbd <= 2 || c.lits.len() == 2 {
                continue;
            }
            // Never remove a clause that is the reason for a current
            // assignment.
            let l0 = c.lits[0];
            let locked = self.value_lit(l0).is_true() && self.reason[l0.var().index()] == Some(r);
            if locked {
                continue;
            }
            self.detach(r);
            self.db.free(r);
            removed += 1;
            self.stats.deleted_learnts += 1;
        }
    }

    fn budget_exceeded(&self) -> bool {
        self.conflict_budget
            .is_some_and(|b| self.budget_conflicts >= b)
            || self
                .propagation_budget
                .is_some_and(|b| self.budget_propagations >= b)
    }

    /// Search with at most `max_conflicts` conflicts (for restarts).
    fn search(&mut self, max_conflicts: u64, assumptions: &[Lit]) -> SolveResult {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                self.budget_conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.final_conflict = Some(confl);
                    self.conflict.clear();
                    return SolveResult::Unsat;
                }
                let (learnt, bt_level) = self.analyze(confl);
                // Never backtrack past the assumptions that are still
                // consistent; re-asserting happens in the decision step.
                self.cancel_until(bt_level);
                self.stats.learned_clauses += 1;
                if learnt.len() == 1 {
                    if self.proof.is_some() {
                        let chain = std::mem::take(&mut self.chain_scratch);
                        let cref = self.db.alloc_unit_learnt(learnt[0]);
                        self.tag_clause(cref, 0, chain);
                        if self.decision_level() == 0 && self.value_lit(learnt[0]).is_undef() {
                            self.unchecked_enqueue(learnt[0], Some(cref));
                        } else if self.decision_level() == 0 {
                            // Already assigned: either satisfied (fine) or
                            // conflicting (unsat).
                            if self.value_lit(learnt[0]).is_false() {
                                self.ok = false;
                                self.final_conflict = Some(cref);
                                self.conflict.clear();
                                return SolveResult::Unsat;
                            }
                        } else {
                            self.unchecked_enqueue(learnt[0], Some(cref));
                        }
                    } else {
                        debug_assert_eq!(self.decision_level(), 0);
                        self.unchecked_enqueue(learnt[0], None);
                    }
                } else {
                    let lbd = self.compute_lbd(&learnt);
                    let first = learnt[0];
                    let cref = self.db.alloc(learnt, true, lbd);
                    if self.proof.is_some() {
                        let chain = std::mem::take(&mut self.chain_scratch);
                        self.tag_clause(cref, 0, chain);
                    }
                    self.attach(cref);
                    self.cla_bump_activity(cref);
                    self.unchecked_enqueue(first, Some(cref));
                }
                self.stats.peak_learnts = self.stats.peak_learnts.max(self.db.num_learnt as u64);
                self.var_decay_activity();
                self.cla_decay_activity();
            } else {
                if conflicts_here >= max_conflicts {
                    // Restart, but keep the assumption prefix of the trail
                    // (trail reuse: replaying hundreds of assumptions per
                    // restart dominates runtime on assumption-heavy
                    // instances like expression (2)).
                    let keep = assumptions.len().min(self.decision_level());
                    self.cancel_until(keep);
                    return SolveResult::Unknown;
                }
                if self.budget_exceeded() {
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
                if self.control_check() {
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
                // Glucose-style periodic reduction keyed on total conflicts.
                if self.proof.is_none() && self.stats.conflicts >= self.next_reduce {
                    self.num_reduces += 1;
                    self.next_reduce = self.stats.conflicts + 10_000 + 2_000 * self.num_reduces;
                    self.reduce_db();
                }
                // Assert pending assumptions as decisions.
                let mut next = None;
                while self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.value_lit(p) {
                        LBool::True => {
                            // Already satisfied: open a dummy level.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.analyze_final(p);
                            return SolveResult::Unsat;
                        }
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(p) => p,
                    None => match self.pick_branch_lit() {
                        Some(p) => {
                            self.stats.decisions += 1;
                            p
                        }
                        None => {
                            // All variables assigned: model found.
                            self.model = self.assigns.clone();
                            return SolveResult::Sat;
                        }
                    },
                };
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(decision, None);
            }
        }
    }

    /// Solves the current clause set under the given assumptions.
    ///
    /// Returns [`SolveResult::Sat`] with a model available through
    /// [`Solver::model_value`], [`SolveResult::Unsat`] with the failed
    /// assumption subset available through [`Solver::conflict`], or
    /// [`SolveResult::Unknown`] when a budget set via
    /// [`Solver::set_budget`] ran out.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.timing {
            let start = Instant::now();
            let result = self.solve_inner(assumptions);
            self.stats.solve_time += start.elapsed();
            result
        } else {
            self.solve_inner(assumptions)
        }
    }

    /// The untimed body of [`Solver::solve`].
    fn solve_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solves += 1;
        self.model.clear();
        self.conflict.clear();
        self.control_stop = false;
        if let Some(control) = &self.control {
            self.control_last_conflicts = self.budget_conflicts;
            self.control_last_propagations = self.budget_propagations;
            if control.solve_started() {
                self.control_stop = true;
                return SolveResult::Unknown;
            }
        }
        if !self.ok {
            return SolveResult::Unsat;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let mut curr_restarts = 0u64;
        loop {
            let budget = luby(2.0, curr_restarts) * self.restart_base as f64;
            let status = self.search(budget as u64, assumptions);
            match status {
                SolveResult::Sat => {
                    self.cancel_until(0);
                    self.control_flush();
                    return SolveResult::Sat;
                }
                SolveResult::Unsat => {
                    self.cancel_until(0);
                    self.control_flush();
                    return SolveResult::Unsat;
                }
                SolveResult::Unknown => {
                    if self.budget_exceeded() || self.control_stop {
                        self.cancel_until(0);
                        self.control_flush();
                        return SolveResult::Unknown;
                    }
                    curr_restarts += 1;
                    self.stats.restarts += 1;
                }
            }
        }
    }

    /// Convenience: solve and return `Some(sat)` or `None` on budget
    /// exhaustion.
    pub fn solve_bool(&mut self, assumptions: &[Lit]) -> Option<bool> {
        match self.solve(assumptions) {
            SolveResult::Sat => Some(true),
            SolveResult::Unsat => Some(false),
            SolveResult::Unknown => None,
        }
    }
}

impl ClauseDb {
    /// Allocates a learnt *unit* clause; only used in proof mode where
    /// units must be first-class proof objects.
    fn alloc_unit_learnt(&mut self, l: Lit) -> ClauseRef {
        self.alloc(vec![l], true, 1)
    }
}

/// The reluctant-doubling (Luby) restart sequence.
fn luby(y: f64, mut x: u64) -> f64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    y.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 2);
        assert!(s.add_clause(&[v[0].positive()]));
        assert!(s.add_clause(&[v[1].negative()]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(v[0].positive()), LBool::True);
        assert_eq!(s.model_value(v[1].positive()), LBool::False);
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.positive()]));
        assert!(!s.add_clause(&[v.negative()]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(!s.is_ok());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn tautology_is_dropped() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.positive(), v.negative()]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn xor_chain_is_sat() {
        // x1 ^ x2 ^ x3 = 1 encoded as CNF; satisfiable.
        let mut s = Solver::new();
        let v = nvars(&mut s, 3);
        let (a, b, c) = (v[0], v[1], v[2]);
        // odd parity clauses
        s.add_clause(&[a.positive(), b.positive(), c.positive()]);
        s.add_clause(&[a.positive(), b.negative(), c.negative()]);
        s.add_clause(&[a.negative(), b.positive(), c.negative()]);
        s.add_clause(&[a.negative(), b.negative(), c.positive()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let parity = [a, b, c]
            .iter()
            .filter(|&&x| s.model_value(x.positive()).is_true())
            .count();
        assert_eq!(parity % 2, 1);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j; 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for i1 in 0..3 {
            for i2 in (i1 + 1)..3 {
                for (a, b) in p[i1].iter().zip(p[i2].iter()) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_restrict_and_release() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 2);
        s.add_clause(&[v[0].positive(), v[1].positive()]);
        assert_eq!(
            s.solve(&[v[0].negative(), v[1].negative()]),
            SolveResult::Unsat
        );
        // Releasing the assumptions makes it satisfiable again.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.solve(&[v[0].negative()]), SolveResult::Sat);
        assert!(s.model_value(v[1].positive()).is_true());
    }

    #[test]
    fn final_conflict_is_subset_of_assumptions() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 4);
        // v0 & v1 -> v2; assume v0, v1, !v2, v3 — v3 is irrelevant.
        s.add_clause(&[v[0].negative(), v[1].negative(), v[2].positive()]);
        let assumptions = [
            v[3].positive(),
            v[0].positive(),
            v[1].positive(),
            v[2].negative(),
        ];
        assert_eq!(s.solve(&assumptions), SolveResult::Unsat);
        let mut confl = s.conflict().to_vec();
        confl.sort_unstable();
        for l in &confl {
            assert!(
                assumptions.contains(l),
                "conflict literal {l:?} not an assumption"
            );
        }
        assert!(
            !confl.contains(&v[3].positive()),
            "irrelevant assumption must not appear"
        );
        assert!(confl.len() >= 2);
    }

    #[test]
    fn budget_yields_unknown_on_hard_instance() {
        // A random-ish parity instance that needs some search.
        let mut s = Solver::new();
        let v = nvars(&mut s, 30);
        // Chain of xor constraints (as CNF) plus a contradiction at the end
        // makes the instance UNSAT but requiring search.
        for i in 0..29 {
            let (a, b) = (v[i], v[i + 1]);
            s.add_clause(&[a.positive(), b.positive()]);
            s.add_clause(&[a.negative(), b.negative()]);
        }
        s.add_clause(&[v[0].positive(), v[29].positive()]);
        s.add_clause(&[v[0].negative(), v[29].negative()]);
        s.set_budget(Some(1), Some(1));
        let r = s.solve(&[]);
        assert_ne!(r, SolveResult::Sat);
        s.clear_budget();
        let r2 = s.solve(&[]);
        // chain forces alternation: v0 != v29 for odd distance... verify solver
        // gives a definitive answer without budget.
        assert_ne!(r2, SolveResult::Unknown);
    }

    #[test]
    fn incremental_blocking_enumerates_models() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 3);
        let mut count = 0;
        while s.solve(&[]) == SolveResult::Sat {
            count += 1;
            assert!(count <= 8, "more models than possible");
            let block: Vec<Lit> = v
                .iter()
                .map(|&x| {
                    if s.model_value(x.positive()).is_true() {
                        x.negative()
                    } else {
                        x.positive()
                    }
                })
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn polarity_hint_is_respected_on_free_variable() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.set_polarity(v, true);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.model_value(v.positive()).is_true());
        let mut s2 = Solver::new();
        let w = s2.new_var();
        s2.set_polarity(w, false);
        assert_eq!(s2.solve(&[]), SolveResult::Sat);
        assert!(s2.model_value(w.positive()).is_false());
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<f64> = (0..9).map(|i| luby(2.0, i)).collect();
        assert_eq!(seq, vec![1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0]);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 3);
        s.add_clause(&[v[0].positive(), v[1].positive(), v[2].positive()]);
        s.solve(&[]);
        assert!(s.stats().solves == 1);
        assert!(s.stats().propagations > 0 || s.stats().decisions > 0);
    }

    #[test]
    fn proof_mode_records_refutation() {
        let mut s = Solver::new();
        s.enable_proof();
        let v = nvars(&mut s, 2);
        let (a, b) = (v[0], v[1]);
        s.add_clause_tagged(&[a.positive(), b.positive()], 1);
        s.add_clause_tagged(&[a.positive(), b.negative()], 1);
        s.add_clause_tagged(&[a.negative(), b.positive()], 2);
        s.add_clause_tagged(&[a.negative(), b.negative()], 2);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let confl = s.final_conflict_clause().expect("conflict clause recorded");
        // Every literal of the final conflict is false at level 0 and has a
        // reason (or is a unit original clause).
        for &l in s.clause_lits(confl) {
            assert!(s.value(l).is_false());
        }
    }

    #[test]
    fn unsat_without_assumptions_has_empty_conflict() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 2);
        s.add_clause(&[v[0].positive(), v[1].positive()]);
        s.add_clause(&[v[0].positive(), v[1].negative()]);
        s.add_clause(&[v[0].negative(), v[1].positive()]);
        s.add_clause(&[v[0].negative(), v[1].negative()]);
        assert_eq!(s.solve(&[v[0].positive()]), SolveResult::Unsat);
        // The formula itself is UNSAT; conflict may be empty or contain the
        // assumption — but solving with no assumptions reports UNSAT with an
        // empty conflict.
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.conflict().is_empty());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn frozen_variables_are_never_decided() {
        let mut s = Solver::new();
        let a = s.new_var();
        let aux = s.new_var();
        s.set_decision_var(aux, false);
        // aux is implied by a (aux <-> a) so propagation still assigns it.
        s.add_clause(&[a.negative(), aux.positive()]);
        s.add_clause(&[a.positive(), aux.negative()]);
        assert_eq!(s.solve(&[a.positive()]), SolveResult::Sat);
        assert!(s.model_value(aux.positive()).is_true());
        // Re-enabling decisions keeps the solver usable.
        s.set_decision_var(aux, true);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn propagation_budget_yields_unknown() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..40).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(&[w[0].negative(), w[1].positive()]);
        }
        s.add_clause(&[vars[0].positive()]);
        // The chain needs ~40 propagations; a tiny budget cannot finish.
        s.set_budget(None, Some(1));
        // Budget may or may not trip depending on where the solver checks;
        // clearing it must always restore a definitive answer.
        let _ = s.solve(&[]);
        s.clear_budget();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.model_value(vars[39].positive()).is_true());
    }

    #[test]
    fn stats_display_is_complete() {
        let s = Solver::new();
        let text = s.stats().to_string();
        for field in [
            "solves=",
            "decisions=",
            "propagations=",
            "conflicts=",
            "restarts=",
            "learned=",
            "peak_learnts=",
            "solve_time=",
        ] {
            assert!(text.contains(field), "{text}");
        }
    }

    #[test]
    fn learned_clause_counters_track_conflicts() {
        // Odd parity chain: every conflict analysis learns a clause.
        let mut s = Solver::new();
        let n = 14;
        let xs: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        for i in 0..n - 2 {
            let (a, b, c) = (xs[i], xs[i + 1], xs[i + 2]);
            s.add_clause(&[a.positive(), b.positive(), c.positive()]);
            s.add_clause(&[a.positive(), b.negative(), c.negative()]);
            s.add_clause(&[a.negative(), b.positive(), c.negative()]);
            s.add_clause(&[a.negative(), b.negative(), c.positive()]);
        }
        let mut mixed: Vec<Lit> = xs.iter().map(|v| v.positive()).collect();
        mixed[0] = !mixed[0];
        let before = *s.stats();
        let _ = s.solve(&mixed);
        let _ = s.solve(&[]);
        let delta = s.stats().since(before);
        assert_eq!(delta.solves, 2);
        // Every analyzed conflict learns a clause; only a root-level
        // conflict (impossible here: the formula itself is SAT) aborts
        // before learning.
        assert_eq!(
            delta.learned_clauses, delta.conflicts,
            "one learnt clause per analyzed conflict"
        );
        if delta.conflicts > 0 {
            assert!(s.stats().peak_learnts > 0);
            assert!(s.stats().peak_learnts <= s.stats().learned_clauses);
        }
    }

    #[test]
    fn stats_since_subtracts_counters() {
        let a = SolverStats {
            solves: 5,
            decisions: 100,
            propagations: 1000,
            conflicts: 40,
            restarts: 3,
            deleted_learnts: 7,
            learned_clauses: 40,
            peak_learnts: 12,
            solve_time: Duration::from_micros(900),
        };
        let b = SolverStats {
            solves: 2,
            decisions: 60,
            propagations: 400,
            conflicts: 10,
            restarts: 1,
            deleted_learnts: 2,
            learned_clauses: 10,
            peak_learnts: 9,
            solve_time: Duration::from_micros(400),
        };
        let d = a.since(b);
        assert_eq!(d.solves, 3);
        assert_eq!(d.decisions, 40);
        assert_eq!(d.propagations, 600);
        assert_eq!(d.conflicts, 30);
        assert_eq!(d.restarts, 2);
        assert_eq!(d.deleted_learnts, 5);
        assert_eq!(d.learned_clauses, 30);
        assert_eq!(d.peak_learnts, 12, "high-water mark is not subtracted");
        assert_eq!(d.solve_time, Duration::from_micros(500));
    }

    #[test]
    fn solve_time_accumulates_only_when_timing_is_enabled() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause(&[v.positive()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(
            s.stats().solve_time,
            Duration::ZERO,
            "timing off by default"
        );
        s.set_timing(true);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.stats().solve_time > Duration::ZERO);
        let after = s.stats().solve_time;
        s.set_timing(false);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.stats().solve_time, after);
    }

    #[test]
    fn trail_reuse_across_restarts_preserves_correctness() {
        // Assumption-heavy UNSAT instance that needs several restarts.
        let mut s = Solver::new();
        let n = 14;
        let xs: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        // Odd parity chain constraints to force search.
        for i in 0..n - 2 {
            let (a, b, c) = (xs[i], xs[i + 1], xs[i + 2]);
            s.add_clause(&[a.positive(), b.positive(), c.positive()]);
            s.add_clause(&[a.positive(), b.negative(), c.negative()]);
            s.add_clause(&[a.negative(), b.positive(), c.negative()]);
            s.add_clause(&[a.negative(), b.negative(), c.positive()]);
        }
        let assumptions: Vec<Lit> = xs.iter().map(|v| v.positive()).collect();
        // All-true violates the xor chain (1^1^1 = 1 requires odd... the
        // chain forces x[i]^x[i+1]^x[i+2] = 1, satisfied by all-true), so
        // check both all-true and a mixed assumption set.
        let r1 = s.solve(&assumptions);
        let mut mixed = assumptions.clone();
        mixed[0] = !mixed[0];
        let r2 = s.solve(&mixed);
        // Consistency: re-solving yields identical answers.
        assert_eq!(s.solve(&assumptions), r1);
        assert_eq!(s.solve(&mixed), r2);
        assert_ne!(s.solve(&[]), SolveResult::Unknown);
    }
}
