//! Core value types shared across the solver: variables, literals, and
//! the three-valued assignment domain.

use std::fmt;
use std::ops::Not;

/// A propositional variable, indexed densely from zero.
///
/// Variables are created by [`Solver::new_var`](crate::Solver::new_var) and
/// are valid only for the solver that created them.
///
/// # Examples
///
/// ```
/// use eco_sat::{Solver, Var};
///
/// let mut solver = Solver::new();
/// let v: Var = solver.new_var();
/// assert_eq!(v.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// Returns the dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// Returns the negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// Returns the literal of this variable with the given sign.
    ///
    /// `negated == false` yields the positive literal.
    #[inline]
    pub fn lit(self, negated: bool) -> Lit {
        Lit((self.0 << 1) | negated as u32)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `var << 1 | sign`, where `sign == 1` means negated — the
/// classic MiniSat encoding, so `lit ^ 1` is the complement.
///
/// # Examples
///
/// ```
/// use eco_sat::{Lit, Var};
///
/// let v = Var::from_index(3);
/// let p = v.positive();
/// assert_eq!(!p, v.negative());
/// assert_eq!(p.var(), v);
/// assert!(!p.is_negated());
/// assert!((!p).is_negated());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// A placeholder literal that is never valid in a clause. Useful as a
    /// sentinel initializer.
    pub const UNDEF: Lit = Lit(u32::MAX);

    /// Creates a literal from its raw MiniSat-style encoding.
    #[inline]
    pub fn from_code(code: u32) -> Lit {
        Lit(code)
    }

    /// Returns the raw MiniSat-style encoding.
    #[inline]
    pub fn code(self) -> u32 {
        self.0
    }

    /// Returns the underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is a negative (complemented) literal.
    #[inline]
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the dense index of the literal (`2*var + sign`), usable for
    /// literal-indexed tables such as watch lists.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "!v{}", self.0 >> 1)
        } else {
            write!(f, "v{}", self.0 >> 1)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Three-valued assignment domain: true, false, or unassigned.
///
/// # Examples
///
/// ```
/// use eco_sat::LBool;
///
/// assert_eq!(LBool::True ^ true, LBool::False);
/// assert_eq!(LBool::Undef ^ true, LBool::Undef);
/// assert_eq!(LBool::from(true), LBool::True);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
#[repr(u8)]
pub enum LBool {
    /// Assigned true.
    True = 0,
    /// Assigned false.
    False = 1,
    /// Not assigned.
    #[default]
    Undef = 2,
}

impl LBool {
    /// Converts to `Option<bool>`: `Undef` becomes `None`.
    #[inline]
    pub fn to_option(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Returns `true` only when assigned true.
    #[inline]
    pub fn is_true(self) -> bool {
        self == LBool::True
    }

    /// Returns `true` only when assigned false.
    #[inline]
    pub fn is_false(self) -> bool {
        self == LBool::False
    }

    /// Returns `true` when unassigned.
    #[inline]
    pub fn is_undef(self) -> bool {
        self == LBool::Undef
    }
}

impl From<bool> for LBool {
    #[inline]
    fn from(value: bool) -> LBool {
        if value {
            LBool::True
        } else {
            LBool::False
        }
    }
}

impl std::ops::BitXor<bool> for LBool {
    type Output = LBool;

    /// Flips the value when `rhs` is true; `Undef` is absorbing.
    #[inline]
    fn bitxor(self, rhs: bool) -> LBool {
        match (self, rhs) {
            (LBool::Undef, _) => LBool::Undef,
            (value, false) => value,
            (LBool::True, true) => LBool::False,
            (LBool::False, true) => LBool::True,
        }
    }
}

/// Outcome of a (possibly budget-limited) solver invocation.
///
/// # Examples
///
/// ```
/// use eco_sat::SolveResult;
///
/// assert!(SolveResult::Sat.is_sat());
/// assert!(SolveResult::Unsat.is_unsat());
/// assert!(!SolveResult::Unknown.is_sat());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found; the model is available.
    Sat,
    /// The formula is unsatisfiable under the given assumptions; the final
    /// conflict is available.
    Unsat,
    /// The budget (conflicts or propagations) was exhausted.
    Unknown,
}

impl SolveResult {
    /// Returns `true` for [`SolveResult::Sat`].
    #[inline]
    pub fn is_sat(self) -> bool {
        self == SolveResult::Sat
    }

    /// Returns `true` for [`SolveResult::Unsat`].
    #[inline]
    pub fn is_unsat(self) -> bool {
        self == SolveResult::Unsat
    }

    /// Returns `true` for [`SolveResult::Unknown`].
    #[inline]
    pub fn is_unknown(self) -> bool {
        self == SolveResult::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_literal_roundtrip() {
        let v = Var::from_index(7);
        assert_eq!(v.index(), 7);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.negative().is_negated());
        assert!(!v.positive().is_negated());
        assert_eq!(v.lit(false), v.positive());
        assert_eq!(v.lit(true), v.negative());
    }

    #[test]
    fn literal_negation_is_involutive() {
        let l = Var::from_index(12).positive();
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn literal_codes_are_dense() {
        let v = Var::from_index(5);
        assert_eq!(v.positive().index(), 10);
        assert_eq!(v.negative().index(), 11);
        assert_eq!(Lit::from_code(10), v.positive());
    }

    #[test]
    fn lbool_xor_table() {
        assert_eq!(LBool::True ^ false, LBool::True);
        assert_eq!(LBool::True ^ true, LBool::False);
        assert_eq!(LBool::False ^ true, LBool::True);
        assert_eq!(LBool::False ^ false, LBool::False);
        assert_eq!(LBool::Undef ^ true, LBool::Undef);
        assert_eq!(LBool::Undef ^ false, LBool::Undef);
    }

    #[test]
    fn lbool_conversions() {
        assert_eq!(LBool::from(true).to_option(), Some(true));
        assert_eq!(LBool::from(false).to_option(), Some(false));
        assert_eq!(LBool::Undef.to_option(), None);
        assert!(LBool::True.is_true());
        assert!(LBool::False.is_false());
        assert!(LBool::Undef.is_undef());
    }

    #[test]
    fn solve_result_predicates() {
        assert!(SolveResult::Sat.is_sat());
        assert!(!SolveResult::Sat.is_unsat());
        assert!(SolveResult::Unsat.is_unsat());
        assert!(SolveResult::Unknown.is_unknown());
    }
}
