//! Randomized differential testing of the CDCL solver against a
//! brute-force evaluator on small CNFs, plus assumption-semantics
//! properties.

use eco_sat::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

/// A clause as a list of signed variable indices (1-based, sign =
/// polarity) over `n` variables.
type RawClause = Vec<i32>;

fn arb_clause(num_vars: i32) -> impl Strategy<Value = RawClause> {
    prop::collection::vec(
        (1..=num_vars).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
        1..=3,
    )
}

fn arb_cnf() -> impl Strategy<Value = (usize, Vec<RawClause>)> {
    (2usize..=8).prop_flat_map(|n| {
        prop::collection::vec(arb_clause(n as i32), 1..=24).prop_map(move |cls| (n, cls))
    })
}

fn to_lit(raw: i32) -> Lit {
    let v = Var::from_index(raw.unsigned_abs() as usize - 1);
    v.lit(raw < 0)
}

fn brute_force_sat(num_vars: usize, cnf: &[RawClause], fixed: &[(usize, bool)]) -> bool {
    'outer: for mask in 0u32..(1 << num_vars) {
        for &(v, val) in fixed {
            if (mask >> v & 1 == 1) != val {
                continue 'outer;
            }
        }
        let ok = cnf.iter().all(|clause| {
            clause.iter().any(|&raw| {
                let idx = raw.unsigned_abs() as usize - 1;
                let assigned = mask >> idx & 1 == 1;
                (raw > 0) == assigned
            })
        });
        if ok {
            return true;
        }
    }
    false
}

fn build_solver(num_vars: usize, cnf: &[RawClause]) -> Solver {
    let mut s = Solver::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    for clause in cnf {
        let lits: Vec<Lit> = clause.iter().map(|&r| to_lit(r)).collect();
        s.add_clause(&lits);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_matches_brute_force((num_vars, cnf) in arb_cnf()) {
        let mut s = build_solver(num_vars, &cnf);
        let expect = brute_force_sat(num_vars, &cnf, &[]);
        let got = s.solve(&[]);
        prop_assert_eq!(got == SolveResult::Sat, expect);
        if got == SolveResult::Sat {
            // The model must actually satisfy the formula.
            for clause in &cnf {
                let sat = clause.iter().any(|&r| s.model_value(to_lit(r)).is_true());
                prop_assert!(sat, "model violates clause {:?}", clause);
            }
        }
    }

    #[test]
    fn assumptions_match_brute_force(
        (num_vars, cnf) in arb_cnf(),
        pattern in prop::collection::vec(any::<bool>(), 8),
    ) {
        let mut s = build_solver(num_vars, &cnf);
        // Assume the first min(2, n) variables with the given polarities.
        let fixed: Vec<(usize, bool)> =
            (0..num_vars.min(2)).map(|i| (i, pattern[i])).collect();
        let assumptions: Vec<Lit> = fixed
            .iter()
            .map(|&(v, val)| Var::from_index(v).lit(!val))
            .collect();
        let expect = brute_force_sat(num_vars, &cnf, &fixed);
        let got = s.solve(&assumptions);
        prop_assert_eq!(got == SolveResult::Sat, expect);
        if got == SolveResult::Unsat {
            // Failed assumptions must be a subset of the assumptions, and
            // assuming just them must still be UNSAT.
            let confl = s.conflict().to_vec();
            for l in &confl {
                prop_assert!(assumptions.contains(l));
            }
            prop_assert_eq!(s.solve(&confl), SolveResult::Unsat);
        }
        // The solver must remain reusable after assumption solving.
        let expect_free = brute_force_sat(num_vars, &cnf, &[]);
        prop_assert_eq!(s.solve(&[]) == SolveResult::Sat, expect_free);
    }
}
