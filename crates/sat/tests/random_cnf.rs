//! Randomized differential testing of the CDCL solver against a
//! brute-force evaluator on small CNFs, plus assumption-semantics
//! properties.

use eco_sat::{Lit, SolveResult, Solver, Var};
use eco_testutil::{cases, Rng};

/// A clause as a list of signed variable indices (1-based, sign =
/// polarity) over `n` variables.
type RawClause = Vec<i32>;

fn random_clause(rng: &mut Rng, num_vars: i32) -> RawClause {
    let len = rng.range(1, 4) as usize;
    (0..len)
        .map(|_| {
            let v = rng.range(1, num_vars as u64 + 1) as i32;
            if rng.bool() {
                v
            } else {
                -v
            }
        })
        .collect()
}

fn random_cnf(rng: &mut Rng) -> (usize, Vec<RawClause>) {
    let n = rng.range(2, 9) as usize;
    let num_clauses = rng.range(1, 25) as usize;
    let cls = (0..num_clauses)
        .map(|_| random_clause(rng, n as i32))
        .collect();
    (n, cls)
}

fn to_lit(raw: i32) -> Lit {
    let v = Var::from_index(raw.unsigned_abs() as usize - 1);
    v.lit(raw < 0)
}

fn brute_force_sat(num_vars: usize, cnf: &[RawClause], fixed: &[(usize, bool)]) -> bool {
    'outer: for mask in 0u32..(1 << num_vars) {
        for &(v, val) in fixed {
            if (mask >> v & 1 == 1) != val {
                continue 'outer;
            }
        }
        let ok = cnf.iter().all(|clause| {
            clause.iter().any(|&raw| {
                let idx = raw.unsigned_abs() as usize - 1;
                let assigned = mask >> idx & 1 == 1;
                (raw > 0) == assigned
            })
        });
        if ok {
            return true;
        }
    }
    false
}

fn build_solver(num_vars: usize, cnf: &[RawClause]) -> Solver {
    let mut s = Solver::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    for clause in cnf {
        let lits: Vec<Lit> = clause.iter().map(|&r| to_lit(r)).collect();
        s.add_clause(&lits);
    }
    s
}

#[test]
fn solver_matches_brute_force() {
    cases(256, |case, rng| {
        let (num_vars, cnf) = random_cnf(rng);
        let mut s = build_solver(num_vars, &cnf);
        let expect = brute_force_sat(num_vars, &cnf, &[]);
        let got = s.solve(&[]);
        assert_eq!(got == SolveResult::Sat, expect, "case {case}: {cnf:?}");
        if got == SolveResult::Sat {
            // The model must actually satisfy the formula.
            for clause in &cnf {
                let sat = clause.iter().any(|&r| s.model_value(to_lit(r)).is_true());
                assert!(sat, "case {case}: model violates clause {clause:?}");
            }
        }
    });
}

#[test]
fn assumptions_match_brute_force() {
    cases(256, |case, rng| {
        let (num_vars, cnf) = random_cnf(rng);
        let pattern: Vec<bool> = (0..8).map(|_| rng.bool()).collect();
        let mut s = build_solver(num_vars, &cnf);
        // Assume the first min(2, n) variables with the given polarities.
        let fixed: Vec<(usize, bool)> = (0..num_vars.min(2)).map(|i| (i, pattern[i])).collect();
        let assumptions: Vec<Lit> = fixed
            .iter()
            .map(|&(v, val)| Var::from_index(v).lit(!val))
            .collect();
        let expect = brute_force_sat(num_vars, &cnf, &fixed);
        let got = s.solve(&assumptions);
        assert_eq!(got == SolveResult::Sat, expect, "case {case}: {cnf:?}");
        if got == SolveResult::Unsat {
            // Failed assumptions must be a subset of the assumptions, and
            // assuming just them must still be UNSAT.
            let confl = s.conflict().to_vec();
            for l in &confl {
                assert!(assumptions.contains(l), "case {case}");
            }
            assert_eq!(s.solve(&confl), SolveResult::Unsat, "case {case}");
        }
        // The solver must remain reusable after assumption solving.
        let expect_free = brute_force_sat(num_vars, &cnf, &[]);
        assert_eq!(s.solve(&[]) == SolveResult::Sat, expect_free, "case {case}");
    });
}
