//! Deterministic pseudo-random helpers for randomized tests and
//! hand-rolled benches.
//!
//! The registry is unavailable in hermetic build environments, so the
//! workspace carries its own tiny splitmix64-based generator instead of
//! depending on an external property-testing framework. Tests written
//! against it are fully deterministic: a failure reproduces from the
//! printed case seed alone.

pub mod prom;

/// A splitmix64 generator. Cheap, decent-quality, and `Copy`-free so
/// accidental state sharing is impossible.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform-ish value in `[lo, hi)`. `hi` must exceed `lo`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Uniform-ish index into a collection of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Runs `f` once per case with a fresh, case-seeded generator. The case
/// number doubles as the reproduction seed; put it in assertion
/// messages.
pub fn cases(n: u64, mut f: impl FnMut(u64, &mut Rng)) {
    for case in 0..n {
        // Decorrelate consecutive case streams.
        let mut rng = Rng::new(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93);
        f(case, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range_and_varies() {
        let mut rng = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn cases_pass_distinct_streams() {
        let mut firsts = Vec::new();
        cases(8, |_, rng| firsts.push(rng.next_u64()));
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 8);
    }
}
