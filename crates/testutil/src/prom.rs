//! A small, strict checker for Prometheus text exposition format
//! 0.0.4, used to validate the daemon's hand-rolled `metrics`
//! rendering in tests and CI.
//!
//! The checker is stricter than a real scraper in ways that keep our
//! generator honest: every sample must be preceded by a `# TYPE`
//! declaration for its family, counters must be finite and
//! non-negative, and histogram families must carry a complete,
//! monotonic bucket series ending in `+Inf` whose value equals the
//! family's `_count`.

use std::collections::BTreeMap;

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Full sample name (histogram samples keep their `_bucket` /
    /// `_sum` / `_count` suffix).
    pub name: String,
    /// Label pairs, in declaration order.
    pub labels: Vec<(String, String)>,
    /// The sample value (`NaN` compares unequal to itself; use
    /// `is_nan`).
    pub value: f64,
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

fn parse_name(s: &str) -> Result<(&str, &str), String> {
    let mut end = 0;
    for (i, c) in s.char_indices() {
        if i == 0 {
            if !is_name_start(c) {
                return Err(format!("bad metric name start in {s:?}"));
            }
        } else if !is_name_char(c) {
            end = i;
            break;
        }
        end = i + c.len_utf8();
    }
    if end == 0 {
        return Err(format!("empty metric name in {s:?}"));
    }
    Ok((&s[..end], &s[end..]))
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s
            .parse::<f64>()
            .map_err(|e| format!("bad sample value {s:?}: {e}")),
    }
}

/// Parsed label pairs plus the unconsumed remainder of the line.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

fn parse_labels(s: &str) -> Result<ParsedLabels<'_>, String> {
    // Caller has consumed the metric name; `s` starts at `{`.
    let mut rest = s
        .strip_prefix('{')
        .ok_or_else(|| format!("expected '{{' in {s:?}"))?;
    let mut labels = Vec::new();
    loop {
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let (key, after_key) = parse_name(rest)?;
        rest = after_key
            .strip_prefix('=')
            .ok_or_else(|| format!("expected '=' after label {key:?}"))?;
        rest = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected '\"' opening label {key:?}"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {key:?}")),
                },
                '\n' => return Err(format!("raw newline in label {key:?}")),
                _ => value.push(c),
            }
        }
        let end = consumed.ok_or_else(|| format!("unterminated label {key:?}"))?;
        labels.push((key.to_string(), value));
        rest = &rest[end..];
        if let Some(after) = rest.strip_prefix(',') {
            rest = after;
        } else if !rest.trim_start().starts_with('}') {
            return Err(format!("expected ',' or '}}' after label {key:?}"));
        }
    }
}

/// The family a sample belongs to: histogram samples shed their
/// conventional suffix when (and only when) the base family is
/// declared as a histogram.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Validates `text` as Prometheus exposition format 0.0.4 and returns
/// every sample, in order. Errors name the offending line.
pub fn check_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: BTreeMap<String, ()> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = parse_name(rest).map_err(err)?;
            if !help.starts_with(' ') || help.trim().is_empty() {
                return Err(err(format!("HELP for {name} has no text")));
            }
            if helped.insert(name.to_string(), ()).is_some() {
                return Err(err(format!("duplicate HELP for {name}")));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = parse_name(rest).map_err(err)?;
            let kind = kind.trim();
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(err(format!("bad TYPE {kind:?} for {name}")));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(err(format!("duplicate TYPE for {name}")));
            }
            continue;
        }
        if line.starts_with('#') {
            // Bare comments are legal.
            continue;
        }
        let (name, rest) = parse_name(line).map_err(&err)?;
        let (labels, rest) = if rest.starts_with('{') {
            parse_labels(rest).map_err(&err)?
        } else {
            (Vec::new(), rest)
        };
        let value_text = rest.trim();
        if value_text.contains(' ') {
            return Err(err(format!(
                "unexpected trailing tokens after value in {line:?}"
            )));
        }
        let value = parse_value(value_text).map_err(&err)?;
        let family = family_of(name, &types);
        let kind = types
            .get(family)
            .ok_or_else(|| err(format!("sample {name} precedes its TYPE")))?;
        if kind == "counter" && !(value >= 0.0 && value.is_finite()) {
            return Err(err(format!("counter {name} has value {value}")));
        }
        samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    check_histograms(&types, &samples)?;
    Ok(samples)
}

fn labelset_key(labels: &[(String, String)], skip: &str) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .filter(|(k, _)| k != skip)
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    pairs.sort_unstable();
    pairs.join(",")
}

fn check_histograms(types: &BTreeMap<String, String>, samples: &[Sample]) -> Result<(), String> {
    for (family, kind) in types {
        if kind != "histogram" {
            continue;
        }
        // Group bucket series by their labelset minus `le`.
        let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        let mut counts: BTreeMap<String, f64> = BTreeMap::new();
        let mut sums: BTreeMap<String, ()> = BTreeMap::new();
        for s in samples {
            if s.name == format!("{family}_bucket") {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| format!("{family}_bucket sample without le"))?;
                let bound = parse_value(&le.1)?;
                series
                    .entry(labelset_key(&s.labels, "le"))
                    .or_default()
                    .push((bound, s.value));
            } else if s.name == format!("{family}_count") {
                counts.insert(labelset_key(&s.labels, "le"), s.value);
            } else if s.name == format!("{family}_sum") {
                sums.insert(labelset_key(&s.labels, "le"), ());
            }
        }
        if series.is_empty() {
            return Err(format!("histogram {family} has no bucket samples"));
        }
        for (key, mut buckets) in series {
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut prev = -1.0f64;
            for &(_, v) in &buckets {
                if v < prev {
                    return Err(format!(
                        "histogram {family}{{{key}}} buckets are not monotonic"
                    ));
                }
                prev = v;
            }
            let (last_bound, inf_value) = *buckets.last().expect("nonempty");
            if !last_bound.is_infinite() {
                return Err(format!("histogram {family}{{{key}}} lacks a +Inf bucket"));
            }
            let count = counts
                .get(&key)
                .ok_or_else(|| format!("histogram {family}{{{key}}} lacks _count"))?;
            if (count - inf_value).abs() > f64::EPSILON {
                return Err(format!(
                    "histogram {family}{{{key}}}: _count {count} != +Inf bucket {inf_value}"
                ));
            }
            if !sums.contains_key(&key) {
                return Err(format!("histogram {family}{{{key}}} lacks _sum"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_exposition() {
        let text = "\
# HELP demo_requests_total Requests.
# TYPE demo_requests_total counter
demo_requests_total{cmd=\"eco\"} 3
demo_requests_total{cmd=\"say \\\"hi\\\"\"} 0
# HELP demo_latency_us Latency.
# TYPE demo_latency_us histogram
demo_latency_us_bucket{le=\"10\"} 1
demo_latency_us_bucket{le=\"+Inf\"} 2
demo_latency_us_sum 12
demo_latency_us_count 2
# HELP demo_ratio Ratio.
# TYPE demo_ratio gauge
demo_ratio NaN
";
        let samples = check_exposition(text).expect("parses");
        assert_eq!(samples.len(), 7);
        assert_eq!(samples[1].labels[0].1, "say \"hi\"");
        assert!(samples[6].value.is_nan());
    }

    #[test]
    fn rejects_samples_before_their_type() {
        let text = "demo_total 1\n# TYPE demo_total counter\n";
        let e = check_exposition(text).unwrap_err();
        assert!(e.contains("precedes its TYPE"), "{e}");
    }

    #[test]
    fn rejects_negative_counters() {
        let text = "# TYPE demo_total counter\ndemo_total -1\n";
        let e = check_exposition(text).unwrap_err();
        assert!(e.contains("counter"), "{e}");
    }

    #[test]
    fn rejects_non_monotonic_histograms() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"+Inf\"} 3
h_sum 9
h_count 3
";
        let e = check_exposition(text).unwrap_err();
        assert!(e.contains("not monotonic"), "{e}");
    }

    #[test]
    fn rejects_histograms_without_inf_or_count_mismatch() {
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(check_exposition(no_inf).unwrap_err().contains("+Inf"));
        let mismatch = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 2
h_sum 1
h_count 3
";
        assert!(check_exposition(mismatch).unwrap_err().contains("_count"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(check_exposition("1bad_name 2\n").is_err());
        assert!(check_exposition("# TYPE x widget\nx 1\n").is_err());
        assert!(check_exposition("# TYPE x gauge\nx{le=\"oops} 1\n").is_err());
        assert!(check_exposition("# TYPE x gauge\nx 1 extra\n").is_err());
    }
}
