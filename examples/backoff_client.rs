//! Reference `eco_patchd` client: jittered exponential backoff.
//!
//! A well-behaved client treats the daemon's load-shedding responses
//! (`"status":"overloaded"` and `"status":"draining"`) as a signal to
//! back off and retry, not as failures. This example runs a daemon
//! in-process over a unix socketpair, deliberately overloads it (two
//! chaos-held requests park both workers while the admission queue is
//! one deep), and shows the retry loop every production client should
//! implement:
//!
//! - honour the server's `retry_after_ms` hint as the floor,
//! - double the wait on every consecutive shed (exponential backoff),
//! - add full jitter so a fleet of retrying clients does not
//!   resynchronize into a thundering herd.
//!
//! Run with: `cargo run --release --example backoff_client`

use eco_daemon::{Daemon, DaemonConfig};
use eco_patch::core::json::{escape_json, parse_json, JsonValue};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::time::Duration;

const IMPL: &str = "module top(a, b, y);\ninput a, b;\noutput y;\nwire t;\n\
                    and g0(t, a, b);\nbuf g1(y, t);\nendmodule\n";
const SPEC: &str = "module top(a, b, y);\ninput a, b;\noutput y;\nwire t;\n\
                    or g0(t, a, b);\nbuf g1(y, t);\nendmodule\n";

/// Deterministic jitter source (splitmix64) — good enough to
/// decorrelate retries, with no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Backoff before retry `attempt` (0-based): the server's
/// `retry_after_ms` hint, doubled per attempt, with full jitter in
/// the upper half so independent clients spread out.
fn backoff_ms(attempt: u32, retry_after_ms: u64, rng: &mut u64) -> u64 {
    let base = retry_after_ms.max(25).saturating_mul(1 << attempt.min(6));
    base / 2 + splitmix64(rng) % (base / 2 + 1)
}

fn eco_line(id: &str, hold_ms: Option<u64>) -> String {
    let options = match hold_ms {
        Some(ms) => format!(",\"options\":{{\"hold_ms\":{ms}}}"),
        None => String::new(),
    };
    format!(
        "{{\"id\":\"{id}\",\"impl\":\"{}\",\"spec\":\"{}\",\"targets\":[\"t\"]{options}}}",
        escape_json(IMPL),
        escape_json(SPEC)
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately tiny daemon: two workers, a one-deep admission
    // queue, chaos hooks enabled so we can park the workers.
    let daemon = Daemon::new(DaemonConfig {
        workers: 2,
        queue_capacity: 1,
        chaos: true,
        ..DaemonConfig::default()
    });
    let (client, server) = UnixStream::pair()?;

    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        let server_reader = BufReader::new(server.try_clone()?);
        let server_writer = server.try_clone()?;
        scope.spawn(move || {
            if let Err(e) = daemon.serve(server_reader, server_writer) {
                eprintln!("daemon: {e}");
            }
        });

        // Responses interleave (two workers), so a reader thread
        // routes them by id into a channel the retry loop drains.
        let (tx, rx) = std::sync::mpsc::channel::<JsonValue>();
        let response_reader = BufReader::new(client.try_clone()?);
        scope.spawn(move || {
            for line in response_reader.lines() {
                let Ok(line) = line else { break };
                match parse_json(&line) {
                    Ok(v) => {
                        if tx.send(v).is_err() {
                            break;
                        }
                    }
                    Err(e) => eprintln!("client: unparsable response {line:?}: {e}"),
                }
            }
        });
        let mut pending: HashMap<String, JsonValue> = HashMap::new();
        let wait_for = |id: &str, pending: &mut HashMap<String, JsonValue>| -> JsonValue {
            if let Some(v) = pending.remove(id) {
                return v;
            }
            loop {
                let v = rx.recv().expect("daemon closed the stream early");
                let got = v
                    .get("id")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string();
                if got == id {
                    return v;
                }
                pending.insert(got, v);
            }
        };

        let mut tx_stream = client.try_clone()?;
        let mut send = move |line: &str| -> std::io::Result<()> {
            tx_stream.write_all(line.as_bytes())?;
            tx_stream.write_all(b"\n")
        };

        // Park both workers for 300ms and fill the one-deep queue, so
        // the next submission is shed with `overloaded`.
        send(&eco_line("hold_0", Some(300)))?;
        send(&eco_line("hold_1", Some(300)))?;
        send(&eco_line("filler", None))?;

        // The retry loop: submit, and on `overloaded`/`draining` back
        // off (server hint × 2^attempt, full jitter) and try again.
        let mut rng = 0x00C0_FFEE_u64;
        let mut total_sheds = 0u32;
        for job in 0..3 {
            let mut attempt = 0u32;
            loop {
                let id = format!("job{job}_try{attempt}");
                send(&eco_line(&id, None))?;
                let response = wait_for(&id, &mut pending);
                match response.get("status").and_then(JsonValue::as_str) {
                    Some("overloaded") | Some("draining") => {
                        let hint = response
                            .get("retry_after_ms")
                            .and_then(JsonValue::as_u64)
                            .unwrap_or(100);
                        let wait = backoff_ms(attempt, hint, &mut rng);
                        println!(
                            "{id}: shed (hint {hint}ms) -> backing off {wait}ms \
                             before attempt {}",
                            attempt + 1
                        );
                        total_sheds += 1;
                        attempt += 1;
                        std::thread::sleep(Duration::from_millis(wait));
                    }
                    Some("ok") => {
                        println!(
                            "{id}: ok (verified={}, cost={})",
                            response
                                .get("verified")
                                .and_then(JsonValue::as_bool)
                                .unwrap_or(false),
                            response
                                .get("cost")
                                .and_then(JsonValue::as_u64)
                                .unwrap_or(0)
                        );
                        break;
                    }
                    other => {
                        println!("{id}: unexpected terminal status {other:?} — giving up");
                        break;
                    }
                }
            }
        }

        send("{\"id\":\"q\",\"cmd\":\"shutdown\"}")?;
        client.shutdown(std::net::Shutdown::Write)?;
        println!(
            "done: 3 jobs landed after {total_sheds} shed(s); \
             held requests answered in the background"
        );
        Ok(())
    })
}
