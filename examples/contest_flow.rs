//! The full ICCAD'17-contest-style flow on file-based inputs:
//!
//! 1. parse the old implementation (`F.v`) with `// eco_target`
//!    directives, the new specification (`G.v`), and the per-net weight
//!    file,
//! 2. run the resource-aware patch engine,
//! 3. emit the patched implementation as structural Verilog.
//!
//! Run with: `cargo run --release --example contest_flow`

use eco_core::{EcoEngine, EcoOptions, EcoProblem, SupportMethod};
use eco_netlist::{parse_verilog, Netlist, WeightTable};

const IMPLEMENTATION: &str = "
// Old implementation: a 2-bit comparator with a bug in the equality
// term (the designer used AND where XNOR was needed).
module cmp2 (a1, a0, b1, b0, eq, gt);
  input a1, a0, b1, b0;
  output eq, gt;
  wire e1, e0, w1, w2, w3;
  // eco_target e1
  // eco_target e0
  and  g1 (e1, a1, b1);      // BUG: should be xnor
  and  g2 (e0, a0, b0);      // BUG: should be xnor
  and  g3 (eq, e1, e0);
  not  g4 (w1, b1);
  and  g5 (w2, a1, w1);
  not  g6 (w3, b0);
  and  g7 (gt, a0, w3);
endmodule
";

const SPECIFICATION: &str = "
module cmp2 (a1, a0, b1, b0, eq, gt);
  input a1, a0, b1, b0;
  output eq, gt;
  wire e1, e0, w1, w2, w3;
  xnor g1 (e1, a1, b1);
  xnor g2 (e0, a0, b0);
  and  g3 (eq, e1, e0);
  not  g4 (w1, b1);
  and  g5 (w2, a1, w1);
  not  g6 (w3, b0);
  and  g7 (gt, a0, w3);
endmodule
";

const WEIGHTS: &str = "
a1 10
a0 10
b1 10
b0 10
w1 2
w2 2
w3 2
e1 5
e0 5
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Parse the contest inputs ---------------------------------------
    let parsed_impl = parse_verilog(IMPLEMENTATION)?;
    let parsed_spec = parse_verilog(SPECIFICATION)?;
    let weights = WeightTable::parse(WEIGHTS)?;
    println!(
        "implementation: {} gates; targets from directives: {:?}",
        parsed_impl.netlist.gates().len(),
        parsed_impl.targets
    );

    // --- Build the problem & run the engine ------------------------------
    let target_names: Vec<&str> = parsed_impl.targets.iter().map(String::as_str).collect();
    let problem = EcoProblem::from_netlists(
        &parsed_impl.netlist,
        &parsed_spec.netlist,
        &target_names,
        &weights,
        100, // default weight for unlisted nets
    )?;
    let engine = EcoEngine::new(
        EcoOptions::builder()
            .method(SupportMethod::SatPrune)
            .build()?,
    );
    let outcome = engine.solve(&problem.snapshot())?;
    println!("verified: {}", outcome.verified);
    println!("total patch cost: {}", outcome.total_cost);
    println!("total patch gates: {}", outcome.total_gates);
    for r in &outcome.reports {
        println!(
            "  target {} ({:?}): support={} cost={} gates={}",
            parsed_impl.targets[r.target_index], r.kind, r.support_size, r.cost, r.gates
        );
    }

    // --- Emit net-level patches and splice them in place -----------------
    let conversion = parsed_impl.netlist.to_aig()?;
    let named =
        eco_core::netlist_patches(&outcome, &target_names, &parsed_impl.netlist, &conversion);
    let mut patched = parsed_impl.netlist.clone();
    for (i, entry) in named.iter().enumerate() {
        match entry {
            Some(np) => {
                println!(
                    "patch {} drives net {:?} from {:?}",
                    i, np.target_net, np.patch.support
                );
                patched = patched.insert_patch(&np.target_net, &np.patch, &format!("eco{i}"))?;
            }
            None => {
                // Support includes patch-created logic: fall back to the
                // AIG-level result for this design.
                println!("patch {i} is not expressible over original nets; using AIG output");
                patched = Netlist::from_aig("cmp2_patched", &outcome.patched_implementation);
                break;
            }
        }
    }
    println!("--- patched implementation (structural Verilog, names preserved) ---");
    print!("{}", patched.to_verilog());
    Ok(())
}
