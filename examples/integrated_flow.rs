//! The integrated ECO flow the paper names as future work: target
//! *detection* followed by patch computation. Given only the old
//! implementation and the new specification (no rectification points),
//! detect a sufficient target set, then patch and verify.
//!
//! Run with: `cargo run --release --example integrated_flow`

use eco_benchgen::{inject_eco, random_aig, CircuitSpec, InjectSpec};
use eco_core::{detect_targets, DetectOptions, EcoEngine, EcoOptions, EcoProblem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An engineer changed the spec; we only have the two netlists.
    let implementation = random_aig(&CircuitSpec {
        num_inputs: 12,
        num_outputs: 6,
        num_gates: 280,
        seed: 77,
    });
    let injected = inject_eco(
        &implementation,
        &InjectSpec {
            num_targets: 2,
            seed: 13,
        },
    )
    .expect("injection succeeds");
    let specification = injected.specification;
    println!(
        "implementation: {} gates; specification changed somewhere (truth withheld: {:?})",
        implementation.num_ands(),
        injected.targets
    );

    // Phase 1: find where to patch.
    let detected = detect_targets(&implementation, &specification, &DetectOptions::default())?;
    println!(
        "detected {} target(s): {:?} (certified sufficient: {})",
        detected.targets.len(),
        detected.targets,
        detected.sufficient
    );

    // Phase 2: compute and verify the patches.
    let problem = EcoProblem::with_unit_weights(implementation, specification, detected.targets)?;
    let outcome = EcoEngine::new(EcoOptions::default()).solve(&problem.snapshot())?;
    println!("patched and verified: {}", outcome.verified);
    for r in &outcome.reports {
        println!(
            "  target #{}: {:?}, support={}, cost={}, gates={}",
            r.target_index, r.kind, r.support_size, r.cost, r.gates
        );
    }
    Ok(())
}
