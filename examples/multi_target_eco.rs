//! Multi-target ECO on a synthetic contest-sized instance, comparing
//! the three support-computation methods of the paper's Table 1:
//! the `analyze_final` baseline, `minimize_assumptions`, and
//! `SAT_prune`.
//!
//! Run with: `cargo run --release --example multi_target_eco`

use eco_benchgen::{build_unit, table1_units};
use eco_core::{check_targets_sufficient, EcoEngine, EcoOptions, QbfOutcome, SupportMethod};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // unit9 of the suite: 4 targets — small enough to run in seconds at
    // reduced scale, large enough to show the method gap.
    let spec = table1_units(0.05).into_iter().nth(8).expect("unit9 exists");
    let problem = build_unit(&spec);
    println!(
        "{}: {} inputs, {} outputs, {} gates, {} targets, weights {:?}",
        spec.name,
        problem.num_inputs(),
        problem.num_outputs(),
        problem.implementation.num_ands(),
        problem.targets.len(),
        spec.weights,
    );

    // The QBF sufficiency check also yields the certificate assignments
    // used to reduce the cofactor expansion (Sec. 3.6.2 of the paper).
    match check_targets_sufficient(&problem, 512, None) {
        QbfOutcome::Solvable {
            certificates,
            sat_calls,
        } => println!(
            "targets sufficient: {} certificate assignments (vs {} full cofactors), {} SAT calls",
            certificates.len(),
            (1usize << problem.targets.len()) - 1,
            sat_calls
        ),
        other => println!("unexpected sufficiency outcome: {other:?}"),
    }

    println!(
        "{:<22} {:>8} {:>8} {:>10} {:>10}",
        "method", "cost", "gates", "SAT calls", "time"
    );
    for (name, method) in [
        ("analyze_final", SupportMethod::AnalyzeFinal),
        ("minimize_assumptions", SupportMethod::MinimizeAssumptions),
        ("SAT_prune", SupportMethod::SatPrune),
    ] {
        let engine = EcoEngine::new(EcoOptions::builder().method(method).build()?);
        let t = std::time::Instant::now();
        let outcome = engine.solve(&problem.snapshot())?;
        assert!(
            outcome.verified,
            "every method must produce a verified patch"
        );
        let calls: u64 = outcome.reports.iter().map(|r| r.sat_calls).sum();
        println!(
            "{:<22} {:>8} {:>8} {:>10} {:>10.2?}",
            name,
            outcome.total_cost,
            outcome.total_gates,
            calls,
            t.elapsed()
        );
    }
    Ok(())
}
