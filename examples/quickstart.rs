//! Quickstart: fix a one-gate functional ECO end to end.
//!
//! The old implementation computes `y = a & b`; a late specification
//! change wants `y = a | b`. We mark the AND gate as the rectification
//! target and let the engine compute, apply, and verify the patch.
//!
//! Run with: `cargo run --release --example quickstart`

use eco_aig::Aig;
use eco_core::{EcoEngine, EcoOptions, EcoProblem, SupportMethod};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The old implementation: y = a & b -----------------------------
    let mut implementation = Aig::new();
    let a = implementation.add_input();
    let b = implementation.add_input();
    let y = implementation.and(a, b);
    implementation.add_output(y);
    let target = y.node();

    // --- The new specification: y = a | b -------------------------------
    let mut specification = Aig::new();
    let a = specification.add_input();
    let b = specification.add_input();
    let y = specification.or(a, b);
    specification.add_output(y);

    // --- Solve the ECO ---------------------------------------------------
    let problem = EcoProblem::with_unit_weights(implementation, specification, vec![target])?;
    let engine = EcoEngine::new(
        EcoOptions::builder()
            .method(SupportMethod::MinimizeAssumptions)
            .build()?,
    );
    let outcome = engine.solve(&problem.snapshot())?;

    println!("ECO solved and verified: {}", outcome.verified);
    for report in &outcome.reports {
        println!(
            "  target #{}: {:?}, support={}, cost={}, patch gates={}, cubes={:?}",
            report.target_index,
            report.kind,
            report.support_size,
            report.cost,
            report.gates,
            report.cubes
        );
    }
    println!(
        "patched implementation: {} AND gates (was {})",
        outcome.patched_implementation.num_ands(),
        problem.implementation.num_ands()
    );
    // The patched netlist can be exported for downstream tools:
    println!("--- patched AIG (ASCII AIGER) ---");
    print!("{}", outcome.patched_implementation.to_aag());
    Ok(())
}
