//! The structural path (Sec. 3.6 of the paper): when SAT budgets run
//! out, the engine derives the patch as the miter cofactor `M(0, x)`
//! over primary inputs, and `CEGAR_min` (max-flow/min-cut
//! resubstitution) rewrites it over cheap internal signals.
//!
//! We emulate the paper's timeouts with a zero conflict budget, then
//! compare the raw structural patch against the `CEGAR_min`-improved
//! one — the same comparison as units 6/10/11/19 of Table 1.
//!
//! Run with: `cargo run --release --example structural_fallback`

use eco_benchgen::{inject_eco, random_aig, CircuitSpec, InjectSpec};
use eco_core::{check_equivalence, CecResult, EcoEngine, EcoOptions, EcoProblem, PatchKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let implementation = random_aig(&CircuitSpec {
        num_inputs: 14,
        num_outputs: 6,
        num_gates: 260,
        seed: 4242,
    });
    let injected = inject_eco(
        &implementation,
        &InjectSpec {
            num_targets: 2,
            seed: 3,
        },
    )
    .expect("injection succeeds");
    let problem =
        EcoProblem::with_unit_weights(implementation, injected.specification, injected.targets)?;

    println!(
        "{:<24} {:>8} {:>8} {:>10}",
        "variant", "cost", "gates", "kinds"
    );
    for (name, cegar_min) in [("structural", false), ("structural+CEGAR_min", true)] {
        // Zero budget: every SAT phase times out immediately, forcing
        // the structural path (the paper's timeout behaviour).
        let options = EcoOptions::builder()
            .per_call_conflicts(Some(0))
            .cegar_min(cegar_min)
            .verify(false) // no budget to verify in-run; we check below
            .build()?;
        let engine = EcoEngine::new(options);
        let outcome = engine.solve(&problem.snapshot())?;
        // Out-of-band verification with a real budget.
        let cec = check_equivalence(
            &outcome.patched_implementation,
            &problem.specification,
            None,
        );
        assert_eq!(
            cec,
            CecResult::Equivalent,
            "structural patch must be correct"
        );
        let kinds: Vec<PatchKind> = outcome.reports.iter().map(|r| r.kind).collect();
        println!(
            "{:<24} {:>8} {:>8} {:>10}",
            name,
            outcome.total_cost,
            outcome.total_gates,
            format!("{kinds:?}")
        );
    }
    println!("\nCEGAR_min rewrites the PI-level cofactor patch over internal");
    println!("signals chosen by a min-weight node cut, shrinking both the");
    println!("resource cost and the patch itself.");
    Ok(())
}
