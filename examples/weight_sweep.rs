//! Resource-aware behaviour: the same functional ECO solved under the
//! contest's eight weight distributions T1–T8. The chosen patch support
//! (and its cost) shifts with the pricing of the circuit's signals.
//!
//! Run with: `cargo run --release --example weight_sweep`

use eco_benchgen::{inject_eco, random_aig, CircuitSpec, InjectSpec};
use eco_core::{
    generate_weights, EcoEngine, EcoOptions, EcoProblem, SupportMethod, WeightDistribution,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let implementation = random_aig(&CircuitSpec {
        num_inputs: 16,
        num_outputs: 8,
        num_gates: 350,
        seed: 2024,
    });
    let injected = inject_eco(
        &implementation,
        &InjectSpec {
            num_targets: 2,
            seed: 7,
        },
    )
    .expect("injection succeeds on this shape");
    println!(
        "instance: {} gates, {} targets; solving under all weight distributions\n",
        implementation.num_ands(),
        injected.targets.len()
    );

    println!(
        "{:<6} {:>10} {:>8} {:>8}",
        "dist", "cost", "support", "gates"
    );
    for dist in WeightDistribution::ALL {
        let weights = generate_weights(&implementation, dist, 99);
        let problem = EcoProblem::new(
            implementation.clone(),
            injected.specification.clone(),
            injected.targets.clone(),
            weights,
        )?;
        let engine = EcoEngine::new(
            EcoOptions::builder()
                .method(SupportMethod::MinimizeAssumptions)
                .build()?,
        );
        let outcome = engine.solve(&problem.snapshot())?;
        assert!(outcome.verified);
        let support: usize = outcome.reports.iter().map(|r| r.support_size).sum();
        println!(
            "{:<6} {:>10} {:>8} {:>8}",
            format!("{dist:?}"),
            outcome.total_cost,
            support,
            outcome.total_gates
        );
    }
    Ok(())
}
