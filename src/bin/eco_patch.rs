//! `eco-patch` — command-line ECO patch generation in the ICCAD'17
//! contest style.
//!
//! ```text
//! eco-patch --impl F.v --spec G.v [--weights W.txt] [--targets n1,n2]
//!           [--detect] [--method baseline|minimize|prune]
//!           [--out patched.v] [--budget N] [--default-weight N]
//!           [--stats-json stats.json|-] [--progress] [--quiet]
//!           [--no-fallback] [--timeout-ms MS] [--global-budget N]
//!           [--jobs N] [--sweep] [--classes]
//!           [--trace-out trace.json] [--trace-format jsonl|chrome]
//! eco-patch report <trace.jsonl> [--top N]
//! eco-patch report --journal <journal.jsonl>
//! ```
//!
//! Targets come from `--targets`, from `// eco_target <net>` directives
//! in the implementation file, or from automatic detection (`--detect`).
//! The patched netlist is written to `--out` (stdout by default), with
//! per-target patch reports on stderr.
//!
//! Stream discipline: stdout carries machine-readable output only (the
//! patched netlist, or the stats JSON with `--stats-json -`); progress,
//! reports, and diagnostics go to stderr.
//!
//! `--trace-out` streams every engine event to a file — JSON Lines by
//! default, or the Chrome `trace_event` format with
//! `--trace-format chrome` (loadable in Perfetto). `eco-patch report`
//! replays a JSONL trace and prints the time/conflict breakdown by
//! phase, target, and call kind plus the most expensive calls;
//! `eco-patch report --journal` instead analyzes an `eco_patchd`
//! `--log-jsonl` event journal (per-command latency percentiles,
//! shed/expired/panic counts, queue-wait vs solve-time attribution,
//! cache hit-rate trajectory).
//!
//! `--timeout-ms` sets a wall-clock deadline and `--global-budget` a
//! run-wide conflict pool; when either trips, the run degrades
//! gracefully (per-target `degraded`/`skipped` dispositions in the
//! report) instead of aborting, and the process exits with code 5.
//!
//! Exit codes: 0 success, 1 generic failure, 2 bad usage, 3 target set
//! insufficient, 4 SAT budget exhausted, 5 deadline exceeded or run
//! cancelled.

use eco_patch::core::trace::{
    check_span_integrity, render_journal_report, render_report, summarize_journal, summarize_trace,
    ChromeTraceObserver, JsonlTraceObserver,
};
use eco_patch::core::{
    detect_targets, netlist_patches, DetectOptions, EcoEngine, EcoError, EcoEvent, EcoObserver,
    EcoOptions, EcoProblem, SupportMethod, TargetDisposition, TripReason,
};
use eco_patch::netlist::{parse_verilog, Netlist, WeightTable};
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const EXIT_USAGE: u8 = 2;
const EXIT_INSUFFICIENT: u8 = 3;
const EXIT_BUDGET: u8 = 4;
const EXIT_DEADLINE: u8 = 5;

/// A CLI failure with its process exit code.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn general(message: impl Into<String>) -> CliError {
        CliError {
            code: 1,
            message: message.into(),
        }
    }

    fn usage(message: impl std::fmt::Display) -> CliError {
        CliError {
            code: EXIT_USAGE,
            message: format!("{message}\n{}", usage()),
        }
    }

    fn engine(err: EcoError) -> CliError {
        // Deadline/cancellation outranks the generic resource-exhausted
        // class it belongs to.
        let code = if matches!(
            err,
            EcoError::DeadlineExceeded { .. } | EcoError::Cancelled { .. }
        ) {
            EXIT_DEADLINE
        } else if matches!(err, EcoError::TargetsInsufficient { .. }) {
            EXIT_INSUFFICIENT
        } else if err.is_resource_exhausted() {
            EXIT_BUDGET
        } else {
            1
        };
        CliError {
            code,
            message: err.to_string(),
        }
    }
}

#[derive(Debug, Default)]
struct Args {
    impl_path: Option<String>,
    spec_path: Option<String>,
    weights_path: Option<String>,
    targets: Vec<String>,
    detect: bool,
    method: Option<String>,
    out: Option<String>,
    budget: Option<u64>,
    default_weight: u64,
    stats_json: Option<String>,
    progress: bool,
    quiet: bool,
    no_fallback: bool,
    timeout_ms: Option<u64>,
    global_budget: Option<u64>,
    trace_out: Option<String>,
    trace_format: TraceFormat,
    jobs: usize,
    sweep: bool,
    classes: bool,
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum TraceFormat {
    #[default]
    Jsonl,
    Chrome,
}

fn usage() -> &'static str {
    "usage: eco-patch --impl F.v --spec G.v [--weights W.txt] \
     [--targets n1,n2] [--detect] [--method baseline|minimize|prune] \
     [--out patched.v] [--budget CONFLICTS] [--default-weight N] \
     [--stats-json PATH|-] [--progress] [--quiet] [--no-fallback] \
     [--timeout-ms MS] [--global-budget CONFLICTS] [--jobs N] [--sweep] [--classes] \
     [--trace-out PATH] [--trace-format jsonl|chrome]\n\
     \x20      eco-patch report TRACE.jsonl [--top N]\n\
     \x20      eco-patch report --journal JOURNAL.jsonl"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        default_weight: 100,
        jobs: 1,
        ..Args::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--impl" => args.impl_path = Some(value("--impl")?),
            "--spec" => args.spec_path = Some(value("--spec")?),
            "--weights" => args.weights_path = Some(value("--weights")?),
            "--targets" => {
                args.targets = value("--targets")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect()
            }
            "--detect" => args.detect = true,
            "--method" => args.method = Some(value("--method")?),
            "--out" => args.out = Some(value("--out")?),
            "--budget" => {
                args.budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|_| "--budget expects an integer".to_string())?,
                )
            }
            "--default-weight" => {
                args.default_weight = value("--default-weight")?
                    .parse()
                    .map_err(|_| "--default-weight expects an integer".to_string())?
            }
            "--stats-json" => args.stats_json = Some(value("--stats-json")?),
            "--progress" => args.progress = true,
            "--quiet" => args.quiet = true,
            "--no-fallback" => args.no_fallback = true,
            "--timeout-ms" => {
                args.timeout_ms = Some(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|_| "--timeout-ms expects an integer".to_string())?,
                )
            }
            "--global-budget" => {
                args.global_budget = Some(
                    value("--global-budget")?
                        .parse()
                        .map_err(|_| "--global-budget expects an integer".to_string())?,
                )
            }
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs expects an integer".to_string())?;
                if args.jobs == 0 {
                    return Err("--jobs expects a value >= 1".to_string());
                }
            }
            "--sweep" => args.sweep = true,
            "--classes" => args.classes = true,
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--trace-format" => {
                args.trace_format = match value("--trace-format")?.as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "chrome" => TraceFormat::Chrome,
                    other => {
                        return Err(format!(
                            "unknown trace format {other:?} (expected jsonl or chrome)"
                        ))
                    }
                }
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.impl_path.is_none() || args.spec_path.is_none() {
        return Err(format!("--impl and --spec are required\n{}", usage()));
    }
    if args.stats_json.as_deref() == Some("-") && args.out.is_none() {
        return Err(format!(
            "--stats-json - writes the metrics to stdout and requires --out \
             for the netlist\n{}",
            usage()
        ));
    }
    Ok(args)
}

/// Streams phase/target progress lines to stderr as the engine runs.
struct ProgressObserver;

impl EcoObserver for ProgressObserver {
    fn on_event(&mut self, event: &EcoEvent) {
        match event {
            EcoEvent::RunStarted { num_targets, .. } => {
                eprintln!("[eco] run started: {num_targets} target(s)")
            }
            EcoEvent::PhaseStarted { phase } => eprintln!("[eco] {} ...", phase.name()),
            EcoEvent::PhaseFinished { phase, elapsed } => {
                eprintln!("[eco] {} done in {elapsed:.2?}", phase.name())
            }
            EcoEvent::TargetStarted { target_index, .. } => {
                eprintln!("[eco]   target {target_index} ...")
            }
            EcoEvent::TargetFinished {
                target_index,
                sat_calls,
                elapsed,
                ..
            } => {
                eprintln!(
                    "[eco]   target {target_index} done: {sat_calls} SAT call(s) in {elapsed:.2?}"
                )
            }
            EcoEvent::StructuralFallback { target_index } => {
                eprintln!("[eco]   target {target_index}: structural fallback")
            }
            EcoEvent::GovernorTripped { reason } => {
                eprintln!("[eco] governor tripped: {reason}")
            }
            EcoEvent::LadderStep { target_index, rung } => {
                eprintln!("[eco]   target {target_index}: ladder -> {}", rung.name())
            }
            _ => {}
        }
    }
}

/// The trace observer attached to the engine for `--trace-out`, kept
/// as a typed handle so the file can be finished after the run.
enum TraceSink {
    Jsonl(Arc<Mutex<JsonlTraceObserver<BufWriter<File>>>>),
    Chrome(Arc<Mutex<ChromeTraceObserver<BufWriter<File>>>>),
}

impl TraceSink {
    /// Recovers the observer from the engine-shared `Arc`, finishes the
    /// trace document, and flushes the file.
    fn finish(self) -> std::io::Result<()> {
        use std::io::Write;
        let mut writer = match self {
            TraceSink::Jsonl(obs) => Arc::try_unwrap(obs)
                .unwrap_or_else(|_| panic!("engine dropped; trace observer no longer shared"))
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .finish()?,
            TraceSink::Chrome(obs) => Arc::try_unwrap(obs)
                .unwrap_or_else(|_| panic!("engine dropped; trace observer no longer shared"))
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .finish()?,
        };
        writer.flush()
    }
}

/// `eco-patch report TRACE.jsonl [--top N]`: replay a JSONL engine
/// trace and print its profile to stdout. With `--journal FILE` the
/// input is instead an `eco_patchd --log-jsonl` event journal, and the
/// report shows serving behavior: per-command latency percentiles,
/// shed/expired/panic counts, queue-wait vs solve-time attribution,
/// and the cache hit-rate trajectory.
fn run_report(rest: &[String]) -> Result<u8, CliError> {
    let mut path: Option<String> = None;
    let mut journal: Option<String> = None;
    let mut top = 5usize;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--top" => {
                i += 1;
                top = rest
                    .get(i)
                    .ok_or_else(|| CliError::usage("--top requires a value"))?
                    .parse()
                    .map_err(|_| CliError::usage("--top expects an integer"))?;
            }
            "--journal" => {
                i += 1;
                journal = Some(
                    rest.get(i)
                        .ok_or_else(|| CliError::usage("--journal requires a file"))?
                        .clone(),
                );
            }
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => return Err(CliError::usage(format!("unexpected argument {other:?}"))),
        }
        i += 1;
    }
    if let Some(path) = journal {
        if path.is_empty() {
            return Err(CliError::usage("--journal requires a file"));
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CliError::general(format!("cannot read {path}: {e}")))?;
        let summary = summarize_journal(&text).map_err(CliError::general)?;
        print!("{}", render_journal_report(&summary));
        return Ok(0);
    }
    let path = path.ok_or_else(|| CliError::usage("report requires a trace file"))?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError::general(format!("cannot read {path}: {e}")))?;
    if let Err(e) = check_span_integrity(&text) {
        eprintln!("warning: {e}");
    }
    let summary = summarize_trace(&text, top).map_err(CliError::general)?;
    print!("{}", render_report(&summary));
    Ok(0)
}

fn run(args: Args) -> Result<u8, CliError> {
    let read = |path: &str| -> Result<String, CliError> {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::general(format!("cannot read {path}: {e}")))
    };
    let impl_text = read(args.impl_path.as_deref().expect("validated"))?;
    let spec_text = read(args.spec_path.as_deref().expect("validated"))?;
    let parsed_impl = parse_verilog(&impl_text).map_err(|e| CliError::general(e.to_string()))?;
    let parsed_spec = parse_verilog(&spec_text).map_err(|e| CliError::general(e.to_string()))?;
    let weights = match &args.weights_path {
        Some(p) => WeightTable::parse(&read(p)?).map_err(|e| CliError::general(e.to_string()))?,
        None => WeightTable::new(),
    };

    // Resolve targets: flag > file directives > detection.
    let mut target_names: Vec<String> = if !args.targets.is_empty() {
        args.targets.clone()
    } else {
        parsed_impl.targets.clone()
    };
    let conversion = parsed_impl
        .netlist
        .to_aig()
        .map_err(|e| CliError::general(e.to_string()))?;
    if target_names.is_empty() {
        if !args.detect {
            return Err(CliError::usage(
                "no targets: pass --targets, add // eco_target directives, or use --detect",
            ));
        }
        let spec_conv = parsed_spec
            .netlist
            .to_aig()
            .map_err(|e| CliError::general(e.to_string()))?;
        let detected = detect_targets(
            &conversion.aig,
            &spec_conv.aig,
            &DetectOptions {
                per_call_conflicts: args.budget.or(Some(2_000_000)),
                ..DetectOptions::default()
            },
        )
        .map_err(CliError::engine)?;
        if !detected.sufficient {
            return Err(CliError {
                code: EXIT_INSUFFICIENT,
                message: "detection could not find a sufficient target set".to_string(),
            });
        }
        // Name the detected nodes through the net map.
        for node in &detected.targets {
            let mut found = None;
            for idx in 0..parsed_impl.netlist.num_nets() {
                let lit = conversion.net_lits[idx];
                if lit.node() == *node {
                    found = Some(
                        parsed_impl
                            .netlist
                            .net_name(eco_patch::netlist::NetId::from_index(idx))
                            .to_string(),
                    );
                    break;
                }
            }
            target_names.push(found.ok_or_else(|| {
                CliError::general(format!(
                    "detected node {node} has no named net; rerun with --targets"
                ))
            })?);
        }
        if !args.quiet {
            eprintln!("detected targets: {target_names:?}");
        }
    }

    let method = match args.method.as_deref() {
        None | Some("minimize") => SupportMethod::MinimizeAssumptions,
        Some("baseline") => SupportMethod::AnalyzeFinal,
        Some("prune") => SupportMethod::SatPrune,
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown method {other:?} (expected baseline, minimize, or prune)"
            )))
        }
    };
    let names: Vec<&str> = target_names.iter().map(String::as_str).collect();
    let problem = EcoProblem::from_netlists(
        &parsed_impl.netlist,
        &parsed_spec.netlist,
        &names,
        &weights,
        args.default_weight,
    )
    .map_err(CliError::engine)?;
    let options = EcoOptions::builder()
        .method(method)
        .per_call_conflicts(args.budget.or(Some(2_000_000)))
        .structural_fallback(!args.no_fallback)
        // `--timeout-ms 0` means "already expired" (anytime outcome,
        // exit code 5); the builder rejects a literal zero deadline, so
        // map it to the smallest representable one.
        .timeout(args.timeout_ms.map(|ms| {
            if ms == 0 {
                Duration::from_nanos(1)
            } else {
                Duration::from_millis(ms)
            }
        }))
        .global_conflicts(args.global_budget)
        .jobs(args.jobs)
        .sweep(args.sweep)
        .classes(args.classes)
        .build()
        .map_err(|e| CliError::usage(e.to_string()))?;
    let mut engine = EcoEngine::new(options);
    if args.progress {
        engine = engine.with_observer(ProgressObserver);
    }
    if args.stats_json.is_some() {
        engine = engine.with_metrics();
    }
    let mut trace_sink = None;
    if let Some(path) = &args.trace_out {
        let file = File::create(path)
            .map_err(|e| CliError::general(format!("cannot write {path}: {e}")))?;
        let writer = BufWriter::new(file);
        let sink = match args.trace_format {
            TraceFormat::Jsonl => {
                TraceSink::Jsonl(Arc::new(Mutex::new(JsonlTraceObserver::new(writer))))
            }
            TraceFormat::Chrome => {
                TraceSink::Chrome(Arc::new(Mutex::new(ChromeTraceObserver::new(writer))))
            }
        };
        engine = match &sink {
            TraceSink::Jsonl(obs) => {
                engine.with_shared_observer(obs.clone() as Arc<Mutex<dyn EcoObserver + Send>>)
            }
            TraceSink::Chrome(obs) => {
                engine.with_shared_observer(obs.clone() as Arc<Mutex<dyn EcoObserver + Send>>)
            }
        };
        trace_sink = Some(sink);
    }
    let run_result = engine.solve(&problem.snapshot());
    // The trace file is finished even when the run errors, so aborted
    // runs still leave a loadable (if truncated) trace behind.
    drop(engine);
    if let Some(sink) = trace_sink {
        let path = args.trace_out.as_deref().unwrap_or("trace");
        sink.finish()
            .map_err(|e| CliError::general(format!("cannot write {path}: {e}")))?;
    }
    let outcome = run_result.map_err(CliError::engine)?;
    if let Some(path) = &args.stats_json {
        let metrics = outcome.metrics.as_ref().expect("with_metrics was set");
        if path == "-" {
            println!("{}", metrics.to_json());
        } else {
            std::fs::write(path, metrics.to_json())
                .map_err(|e| CliError::general(format!("cannot write {path}: {e}")))?;
        }
    }
    if !args.quiet {
        eprintln!(
            "solved: cost={} patch_gates={} verified={} in {:.2?}",
            outcome.total_cost, outcome.total_gates, outcome.verified, outcome.elapsed
        );
        if let Some(trip) = outcome.governor_trip {
            eprintln!("governor tripped ({trip}); partial (anytime) result");
        }
        for r in &outcome.reports {
            let disposition = match &r.disposition {
                TargetDisposition::Patched => "patched".to_string(),
                TargetDisposition::Degraded => "degraded".to_string(),
                TargetDisposition::Skipped { reason } => format!("skipped: {reason}"),
                _ => "?".to_string(),
            };
            eprintln!(
                "  target {} ({:?}, {disposition}): support={} cost={} gates={}",
                target_names
                    .get(r.target_index)
                    .map(String::as_str)
                    .unwrap_or("?"),
                r.kind,
                r.support_size,
                r.cost,
                r.gates
            );
        }
    }

    // Prefer name-preserving splices; fall back to the rebuilt netlist.
    let named = netlist_patches(&outcome, &names, &parsed_impl.netlist, &conversion);
    let patched = if named.iter().all(Option::is_some) {
        let mut current = parsed_impl.netlist.clone();
        for (i, entry) in named.iter().enumerate() {
            let np = entry.as_ref().expect("checked");
            current = current
                .insert_patch(&np.target_net, &np.patch, &format!("eco{i}"))
                .map_err(|e| CliError::general(e.to_string()))?;
        }
        current
    } else {
        if !args.quiet {
            eprintln!("note: a patch uses patch-created logic; emitting rebuilt netlist");
        }
        Netlist::from_aig(
            format!("{}_patched", parsed_impl.netlist.name()),
            &outcome.patched_implementation,
        )
    };
    let text = patched.to_verilog();
    match &args.out {
        Some(path) => std::fs::write(path, text)
            .map_err(|e| CliError::general(format!("cannot write: {e}")))?,
        None => print!("{text}"),
    }
    // Outputs are written even for anytime results; the exit code
    // still distinguishes a deadline/cancellation cut-off.
    let code = match outcome.governor_trip {
        Some(TripReason::Deadline | TripReason::Cancelled) => EXIT_DEADLINE,
        _ => 0,
    };
    Ok(code)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("report") {
        return match run_report(&argv[1..]) {
            Ok(code) => ExitCode::from(code),
            Err(e) => {
                eprintln!("error: {e}", e = e.message);
                ExitCode::from(e.code)
            }
        };
    }
    match parse_args() {
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(EXIT_USAGE)
        }
        Ok(args) => match run(args) {
            Ok(code) => ExitCode::from(code),
            Err(e) => {
                eprintln!("error: {e}", e = e.message);
                ExitCode::from(e.code)
            }
        },
    }
}
