//! `eco_patchd`: the persistent ECO patch serving daemon. All logic
//! lives in [`eco_patch::daemon`]; this wrapper only parses the
//! process arguments and maps the result to an exit code.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(i32::from(eco_patch::daemon::run_cli(&args)));
}
