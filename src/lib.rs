//! # eco-patch
//!
//! Umbrella crate for the from-scratch Rust reproduction of
//! *"Efficient Computation of ECO Patch Functions"* (Dao, Lee, Chen,
//! Lin, Jiang, Mishchenko, Brayton — DAC 2018): SAT-based,
//! resource-aware computation of multi-target ECO patch functions.
//!
//! This crate re-exports the workspace members:
//!
//! - [`sat`] — CDCL SAT solver with assumptions, `analyze_final`,
//!   pseudo-Boolean sums, and proof logging,
//! - [`aig`] — And-Inverter Graphs, simulation, cubes/SOPs, factoring,
//! - [`netlist`] — contest-style Verilog netlists and weight files,
//! - [`graph`] — max-flow / node-capacitated min-cut,
//! - [`core`] — the ECO engine itself,
//! - [`daemon`] — the `eco_patchd` serving daemon (JSONL protocol,
//!   content-hash caches),
//! - [`benchgen`] — the synthetic ICCAD'17-style benchmark suite.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.
//!
//! # Examples
//!
//! ```
//! use eco_patch::aig::Aig;
//! use eco_patch::core::{EcoEngine, EcoOptions, EcoProblem};
//!
//! let mut im = Aig::new();
//! let a = im.add_input();
//! let b = im.add_input();
//! let t = im.and(a, b);
//! im.add_output(t);
//! let mut sp = Aig::new();
//! let a = sp.add_input();
//! let b = sp.add_input();
//! let y = sp.or(a, b);
//! sp.add_output(y);
//! let problem = EcoProblem::with_unit_weights(im, sp, vec![t.node()])?;
//! let outcome = EcoEngine::new(EcoOptions::default()).solve(&problem.snapshot())?;
//! assert!(outcome.verified);
//! # Ok::<(), eco_patch::core::EcoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use eco_aig as aig;
pub use eco_benchgen as benchgen;
pub use eco_core as core;
pub use eco_daemon as daemon;
pub use eco_graph as graph;
pub use eco_netlist as netlist;
pub use eco_sat as sat;
