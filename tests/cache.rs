//! Cache-correctness tests for the content-hash cache layers: a warm
//! cache must change wall-clock, never answers. A sequential ECO
//! stream (one design, N spec revisions) through a shared
//! [`EcoCache`] must produce byte-identical patched netlists to
//! cold-cache runs, with per-request hit/miss counts surfaced in the
//! run's [`RunMetrics`]; a tiny capacity must evict without
//! corrupting results.

use eco_patch::aig::Aig;
use eco_patch::core::{EcoCache, EcoEngine, EcoOptions, EcoProblem};
use eco_patch::netlist::Netlist;

/// Implementation: `out0 = AND(a, b)`, `out1 = AND(c, d)` — two
/// targets with disjoint output cones, so the engine batches them and
/// keys each member by its own cone.
fn implementation() -> (Aig, Vec<eco_patch::aig::NodeId>) {
    let mut im = Aig::new();
    let (a, b) = (im.add_input(), im.add_input());
    let (c, d) = (im.add_input(), im.add_input());
    let t0 = im.and(a, b);
    let t1 = im.and(c, d);
    im.add_output(t0);
    im.add_output(t1);
    (im, vec![t0.node(), t1.node()])
}

/// Revision `rev` of the specification: `out0 = OR(a, b)` always;
/// `out1` cycles through functions of `{c, d}` (same support, so the
/// window inputs — and with them target 0's cache keys — stay put).
fn specification(rev: usize) -> Aig {
    let mut sp = Aig::new();
    let (a, b) = (sp.add_input(), sp.add_input());
    let (c, d) = (sp.add_input(), sp.add_input());
    let y0 = sp.or(a, b);
    let y1 = match rev % 3 {
        0 => sp.or(c, d),
        1 => sp.xor(c, d),
        _ => !sp.and(c, d),
    };
    sp.add_output(y0);
    sp.add_output(y1);
    sp
}

fn problem(rev: usize) -> EcoProblem {
    let (im, targets) = implementation();
    EcoProblem::with_unit_weights(im, specification(rev), targets).expect("valid problem")
}

fn options() -> EcoOptions {
    options_with_sweep(false)
}

fn options_with_sweep(sweep: bool) -> EcoOptions {
    EcoOptions::builder()
        .per_call_conflicts(Some(100_000))
        .jobs(1)
        .sweep(sweep)
        .build()
        .expect("valid options")
}

/// The byte-level deliverable of an outcome: the patched netlist as
/// Verilog text (deterministic given the patched AIG).
fn emitted(outcome: &eco_patch::core::EcoOutcome) -> String {
    Netlist::from_aig("patched", &outcome.patched_implementation).to_verilog()
}

#[test]
fn sequential_eco_stream_is_byte_identical_to_cold_cache() {
    let cache = EcoCache::new(64);
    for rev in 0..3 {
        let snapshot = problem(rev).snapshot();
        let warm = EcoEngine::new(options())
            .with_metrics()
            .with_cache(cache.clone())
            .solve(&snapshot)
            .expect("warm run solves");
        let cold = EcoEngine::new(options())
            .with_metrics()
            .solve(&snapshot)
            .expect("cold run solves");

        assert!(warm.verified && cold.verified, "rev {rev}: both verify");
        assert_eq!(
            emitted(&warm),
            emitted(&cold),
            "rev {rev}: warm and cold patched netlists must be byte-identical"
        );
        assert_eq!(warm.total_cost, cold.total_cost, "rev {rev}");
        assert_eq!(warm.total_gates, cold.total_gates, "rev {rev}");
        let warm_dispositions: Vec<_> =
            warm.reports.iter().map(|r| r.disposition.clone()).collect();
        let cold_dispositions: Vec<_> =
            cold.reports.iter().map(|r| r.disposition.clone()).collect();
        assert_eq!(warm_dispositions, cold_dispositions, "rev {rev}");

        // Per-request hit/miss accounting rides in the RunMetrics.
        let counters = warm.metrics.as_ref().expect("with_metrics was set").cache;
        if rev == 0 {
            assert_eq!(counters.window_hits, 0, "first revision is all misses");
            assert_eq!(counters.target_hits, 0, "first revision is all misses");
            assert!(counters.target_misses > 0);
        } else {
            // A one-gate spec revision: target 0's cone is untouched,
            // so its solved entry is served from the cache while the
            // revised target 1 recomputes.
            assert!(
                counters.target_hits >= 1,
                "rev {rev}: the untouched target must hit, got {counters:?}"
            );
            assert!(
                counters.target_misses >= 1,
                "rev {rev}: the revised target must miss, got {counters:?}"
            );
        }
        let cold_counters = cold.metrics.as_ref().expect("with_metrics was set").cache;
        assert_eq!(cold_counters.window_hits + cold_counters.target_hits, 0);
    }

    // Replaying the last revision verbatim hits every layer.
    let snapshot = problem(2).snapshot();
    let replay = EcoEngine::new(options())
        .with_metrics()
        .with_cache(cache.clone())
        .solve(&snapshot)
        .expect("replay solves");
    let counters = replay.metrics.as_ref().expect("with_metrics was set").cache;
    assert_eq!(counters.window_hits, 1, "identical problem: window hits");
    assert_eq!(
        counters.target_hits, 2,
        "identical problem: both targets hit"
    );
    assert_eq!(counters.target_misses, 0, "{counters:?}");
    assert!(
        replay.reports.iter().all(|r| r.sat_calls == 0),
        "cache-served targets spend no solver work"
    );
}

#[test]
fn sweeping_shares_cache_entries_with_unswept_runs() {
    // Sweeping is verdict-preserving, so swept windows hash to the
    // same content keys: a cache warmed without sweeping must serve a
    // swept replay entirely (and vice versa), with byte-identical
    // output and zero solver work.
    for (warm_sweep, replay_sweep) in [(false, true), (true, false)] {
        let cache = EcoCache::new(64);
        let snapshot = problem(0).snapshot();
        let warm = EcoEngine::new(options_with_sweep(warm_sweep))
            .with_cache(cache.clone())
            .solve(&snapshot)
            .expect("warm run solves");
        let replay = EcoEngine::new(options_with_sweep(replay_sweep))
            .with_metrics()
            .with_cache(cache.clone())
            .solve(&snapshot)
            .expect("replay solves");
        let label = format!("warm sweep={warm_sweep}, replay sweep={replay_sweep}");
        assert_eq!(emitted(&warm), emitted(&replay), "{label}");
        let counters = replay.metrics.as_ref().expect("with_metrics was set").cache;
        assert_eq!(counters.window_hits, 1, "{label}: window must hit");
        assert_eq!(counters.target_hits, 2, "{label}: both targets must hit");
        assert_eq!(counters.target_misses, 0, "{label}: {counters:?}");
        assert!(
            replay.reports.iter().all(|r| r.sat_calls == 0),
            "{label}: cache-served targets spend no solver work"
        );
    }
}

#[test]
fn weight_sweep_reuses_cnf_builds_across_requests() {
    // Same subproblem, different weights: the solve key changes (the
    // ladder reads weights) but the quantified-miter key does not, so
    // the second request hits the CNF layer while re-solving.
    let cache = EcoCache::new(64);
    let (im, targets) = implementation();
    let unit = EcoProblem::with_unit_weights(im.clone(), specification(0), targets.clone())
        .expect("valid problem");
    let weighted = EcoProblem::new(
        im.clone(),
        specification(0),
        targets,
        vec![3; im.num_nodes()],
    )
    .expect("valid problem");
    let first = EcoEngine::new(options())
        .with_metrics()
        .with_cache(cache.clone())
        .solve(&unit.snapshot())
        .expect("solves");
    let second = EcoEngine::new(options())
        .with_metrics()
        .with_cache(cache.clone())
        .solve(&weighted.snapshot())
        .expect("solves");
    assert!(first.verified && second.verified);
    let counters = second.metrics.as_ref().expect("with_metrics was set").cache;
    assert_eq!(
        counters.target_hits, 0,
        "weights differ: no solved-target reuse"
    );
    assert!(
        counters.cnf_hits >= 1,
        "the weight sweep must reuse CNF builds, got {counters:?}"
    );
    assert_eq!(
        counters.window_hits, 1,
        "windowing ignores weights: {counters:?}"
    );
}

#[test]
fn tiny_capacity_evicts_without_corrupting_answers() {
    // Capacity 1 per layer: alternating two revisions thrashes every
    // layer, forcing evictions; answers must stay byte-identical to
    // cold-cache runs throughout.
    let cache = EcoCache::new(1);
    for step in 0..4 {
        let rev = step % 2;
        let snapshot = problem(rev).snapshot();
        let warm = EcoEngine::new(options())
            .with_cache(cache.clone())
            .solve(&snapshot)
            .expect("warm run solves");
        let cold = EcoEngine::new(options())
            .solve(&snapshot)
            .expect("cold run solves");
        assert_eq!(
            emitted(&warm),
            emitted(&cold),
            "step {step} (rev {rev}): eviction must not change answers"
        );
    }
    assert!(
        cache.stats().evictions > 0,
        "alternating revisions at capacity 1 must evict: {:?}",
        cache.stats()
    );
}
