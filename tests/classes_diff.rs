//! Byte-identity suite for `--classes`: the test-equivalence-class
//! layer may only *inherit* SAT verdicts it can prove from stored
//! witnesses (Sat) or feasible-set monotonicity (Unsat) — it must
//! never move a support, a patch, a cost, a disposition, or a byte of
//! the emitted netlist. Classes on must never issue *more* SAT calls
//! than classes off, and every avoided call must be accounted for in
//! `classes.inherited_answers` (the PR 8 sweep audit pattern).

use std::io::Write;
use std::process::Command;

use eco_patch::benchgen::{build_unit, table1_units};
use eco_patch::core::{
    AppliedPatch, EcoEngine, EcoOptions, EcoOutcome, EcoProblem, RunMetrics, SupportMethod,
};
use eco_patch::netlist::Netlist;

const TEST_SCALE: f64 = 0.02;

fn run(problem: &EcoProblem, options: EcoOptions, name: &str) -> EcoOutcome {
    EcoEngine::new(options)
        .with_metrics()
        .solve(&problem.snapshot())
        .unwrap_or_else(|e| panic!("{name} failed: {e}"))
}

fn patched_text(outcome: &EcoOutcome) -> String {
    Netlist::from_aig("patched".to_string(), &outcome.patched_implementation).to_verilog()
}

fn patch_fingerprint(p: &AppliedPatch) -> String {
    format!(
        "target={} support={:?} original={:?} aig={}",
        p.target_index,
        p.support,
        p.original_support,
        Netlist::from_aig("patch".to_string(), &p.aig).to_verilog()
    )
}

fn assert_outcomes_identical(off: &EcoOutcome, on: &EcoOutcome, name: &str) {
    assert_eq!(
        format!("{:?}", off.reports),
        format!("{:?}", on.reports),
        "{name}: per-target reports (dispositions, kinds, costs, sat_calls) must not move"
    );
    let fingerprints = |o: &EcoOutcome| o.patches.iter().map(patch_fingerprint).collect::<Vec<_>>();
    assert_eq!(
        fingerprints(off),
        fingerprints(on),
        "{name}: applied patches must not move"
    );
    assert_eq!(off.total_cost, on.total_cost, "{name}: total cost");
    assert_eq!(off.total_gates, on.total_gates, "{name}: total gates");
    assert_eq!(off.verified, on.verified, "{name}: verification verdict");
    assert_eq!(
        patched_text(off),
        patched_text(on),
        "{name}: patched netlist text must be byte-identical"
    );
}

fn metrics<'a>(outcome: &'a EcoOutcome, name: &str) -> &'a RunMetrics {
    outcome
        .metrics
        .as_ref()
        .unwrap_or_else(|| panic!("{name}: metrics requested"))
}

/// Every SAT call the optimized run avoided is accounted for:
/// `observed_off + hits_off + inherited_off == observed_on + hits_on +
/// inherited_on`, i.e. the per-target `sat_calls` tallies (which count
/// inherited answers as if spent) balance exactly.
fn assert_savings_audited(off: &RunMetrics, on: &RunMetrics, name: &str) {
    let spent =
        |m: &RunMetrics| m.sat_calls.total + m.sweep.oracle_hits + m.classes.inherited_answers;
    assert_eq!(
        spent(off),
        spent(on),
        "{name}: observed + sweep hits + inherited answers must balance \
         (off: {} + {} + {}, on: {} + {} + {})",
        off.sat_calls.total,
        off.sweep.oracle_hits,
        off.classes.inherited_answers,
        on.sat_calls.total,
        on.sweep.oracle_hits,
        on.classes.inherited_answers
    );
}

#[test]
fn classes_on_matches_classes_off_byte_for_byte() {
    for unit in table1_units(TEST_SCALE).iter() {
        let problem = build_unit(unit);
        let opts = |classes: bool| {
            EcoOptions::builder()
                .classes(classes)
                .build()
                .expect("valid options")
        };
        let off = run(&problem, opts(false), unit.name);
        let on = run(&problem, opts(true), unit.name);
        assert_outcomes_identical(&off, &on, unit.name);
        let (off_m, on_m) = (metrics(&off, unit.name), metrics(&on, unit.name));
        assert!(
            on_m.sat_calls.total <= off_m.sat_calls.total,
            "{}: classes must not add SAT calls",
            unit.name
        );
        assert_savings_audited(off_m, on_m, unit.name);
        assert_eq!(
            off_m.classes.inherited_answers, 0,
            "{}: classes-off emits no class events",
            unit.name
        );
    }
}

#[test]
fn classes_never_add_sat_calls_on_unit20() {
    // SatPrune issues orders of magnitude more subset-feasibility
    // calls than MinimizeAssumptions, so it runs at a smaller scale to
    // keep the unoptimized test build quick.
    for (method, scale) in [
        (SupportMethod::MinimizeAssumptions, TEST_SCALE),
        (SupportMethod::SatPrune, 0.008),
    ] {
        let unit = table1_units(scale)
            .into_iter()
            .find(|u| u.name == "unit20")
            .expect("unit20 exists");
        let problem = build_unit(&unit);
        let opts = |classes: bool| {
            EcoOptions::builder()
                .method(method)
                .classes(classes)
                .build()
                .expect("valid options")
        };
        let name = format!("unit20/{method:?}");
        let off = run(&problem, opts(false), &name);
        let on = run(&problem, opts(true), &name);
        assert_outcomes_identical(&off, &on, &name);
        let (off_m, on_m) = (metrics(&off, &name), metrics(&on, &name));
        assert!(
            on_m.sat_calls.total <= off_m.sat_calls.total,
            "{name}: classes-on issued {} SAT calls, classes-off {}",
            on_m.sat_calls.total,
            off_m.sat_calls.total
        );
        assert_savings_audited(off_m, on_m, &name);
        // The layer actually engaged: divisor partitions were built and
        // the counters made it into RunMetrics.
        assert!(
            on_m.classes.partitions > 0,
            "{name}: the class layer never partitioned"
        );
        if method == SupportMethod::SatPrune {
            // Everything is seeded, so the measured reduction is
            // deterministic: inheritance must discharge real calls.
            assert!(
                on_m.classes.inherited_answers > 0,
                "{name}: no answer was inherited"
            );
            assert!(
                on_m.sat_calls.total < off_m.sat_calls.total,
                "{name}: classes must measurably reduce SAT calls here"
            );
        }
    }
}

#[test]
fn classed_runs_are_jobs_invariant() {
    for unit in table1_units(TEST_SCALE).iter().take(6) {
        let problem = build_unit(unit);
        let opts = |jobs: usize| {
            EcoOptions::builder()
                .classes(true)
                .jobs(jobs)
                .build()
                .expect("valid options")
        };
        let seq = run(&problem, opts(1), unit.name);
        let par = run(&problem, opts(4), unit.name);
        assert_outcomes_identical(&seq, &par, unit.name);
        assert_eq!(
            metrics(&seq, unit.name).classes,
            metrics(&par, unit.name).classes,
            "{}: class counters are jobs-invariant",
            unit.name
        );
    }
}

#[test]
fn classes_compose_with_sweep_byte_for_byte() {
    // The two verdict-preserving layers stacked must still match a
    // bare run, and the combined savings must balance the audit
    // equation (sweep is consulted first, classes second, so the
    // split between them is config-dependent — only the sum is
    // pinned).
    let unit = table1_units(0.008)
        .into_iter()
        .find(|u| u.name == "unit20")
        .expect("unit20 exists");
    let problem = build_unit(&unit);
    let opts = |sweep: bool, classes: bool| {
        EcoOptions::builder()
            .method(SupportMethod::SatPrune)
            .sweep(sweep)
            .classes(classes)
            .build()
            .expect("valid options")
    };
    let bare = run(&problem, opts(false, false), "bare");
    let both = run(&problem, opts(true, true), "sweep+classes");
    assert_outcomes_identical(&bare, &both, "unit20 sweep+classes");
    let (bare_m, both_m) = (metrics(&bare, "bare"), metrics(&both, "sweep+classes"));
    assert!(
        both_m.sat_calls.total <= bare_m.sat_calls.total,
        "stacked layers must not add SAT calls"
    );
    assert_savings_audited(bare_m, both_m, "unit20 sweep+classes");
}

const IMPLEMENTATION: &str = "
module adder (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire s1, c1, c2;
  // eco_target c1
  xor g1 (s1, a, b);
  xor g2 (sum, s1, cin);
  or  g3 (c1, a, b);
  and g4 (c2, s1, cin);
  or  g5 (cout, c1, c2);
endmodule
";

const SPECIFICATION: &str = "
module adder (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire s1, c1, c2;
  xor g1 (s1, a, b);
  xor g2 (sum, s1, cin);
  and g3 (c1, a, b);
  and g4 (c2, s1, cin);
  or  g5 (cout, c1, c2);
endmodule
";

#[test]
fn cli_classes_flag_keeps_exit_code_and_output_bytes() {
    let dir = std::env::temp_dir().join(format!("eco_classes_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let write = |name: &str, content: &str| {
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).expect("create");
        f.write_all(content.as_bytes()).expect("write");
        path.to_string_lossy().into_owned()
    };
    let f = write("F.v", IMPLEMENTATION);
    let g = write("G.v", SPECIFICATION);
    let mut variants = Vec::new();
    for classes in [false, true] {
        let out = dir
            .join(if classes { "on.v" } else { "off.v" })
            .to_string_lossy()
            .into_owned();
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_eco_patch"));
        cmd.args(["--impl", &f, "--spec", &g, "--out", &out]);
        if classes {
            cmd.arg("--classes");
        }
        let status = cmd.status().expect("binary runs");
        variants.push((status.code(), std::fs::read(&out).expect("output written")));
    }
    assert_eq!(variants[0].0, variants[1].0, "exit codes must match");
    assert_eq!(
        variants[0].1, variants[1].1,
        "patched netlists must be byte-identical with and without --classes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
