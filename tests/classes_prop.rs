//! Property tests for the test-equivalence-class layer: random
//! benchgen circuits have their node literals partitioned with
//! [`partition_literals`] and every class is checked exact — members
//! agree with their representative by exhaustive simulation up to
//! [`MAX_EXHAUSTIVE_INPUTS`] inputs and by miter-SAT above — across
//! seeds, budgets, and fault-injection chaos. A degraded partition
//! must collapse to the identity (zero inherited answers), never to a
//! wrong merge.

use eco_patch::aig::{Aig, AigLit, MAX_EXHAUSTIVE_INPUTS};
use eco_patch::benchgen::{random_aig, CircuitSpec};
use eco_patch::core::{
    check_equivalence, partition_literals, CecResult, FaultPlan, GovernorLimits, PartitionOutcome,
    ResourceGovernor,
};
use eco_testutil::{cases, Rng};

fn random_spec(rng: &mut Rng) -> CircuitSpec {
    CircuitSpec {
        num_inputs: rng.range(3, 10) as usize,
        num_outputs: rng.range(1, 5) as usize,
        num_gates: rng.range(20, 120) as usize,
        seed: rng.next_u64(),
    }
}

/// A deterministic candidate pool: every node literal of the circuit,
/// with a pseudo-random phase so complement handling is exercised.
fn candidate_literals(aig: &Aig, rng: &mut Rng) -> Vec<AigLit> {
    aig.iter_nodes()
        .map(|id| id.lit().xor_complement(rng.bool()))
        .collect()
}

/// Structural partition invariants: every index appears exactly once,
/// the first member of each class is its smallest index, and the
/// counters describe the class shape.
fn assert_is_partition(out: &PartitionOutcome, len: usize, label: &str) {
    let mut seen = vec![false; len];
    for class in &out.classes {
        assert!(!class.is_empty(), "{label}: empty class");
        for &i in class {
            assert!(!seen[i], "{label}: index {i} appears in two classes");
            seen[i] = true;
        }
        assert_eq!(
            class[0],
            *class.iter().min().expect("non-empty"),
            "{label}: representative must be the smallest member"
        );
    }
    assert!(seen.iter().all(|&b| b), "{label}: some index unclassified");
    assert_eq!(out.stats.partitions, out.classes.len() as u64, "{label}");
    let choose2 = |k: u64| k * k.saturating_sub(1) / 2;
    let implied: u64 = out
        .classes
        .iter()
        .map(|c| choose2(c.len() as u64 - 1))
        .sum();
    assert_eq!(
        out.stats.inherited_answers, implied,
        "{label}: inherited answers are the transitively implied member pairs"
    );
}

/// Exact-class check by exhaustive simulation: two literals share a
/// class iff they compute the same function, same phase.
fn assert_classes_exact_exhaustive(
    aig: &Aig,
    literals: &[AigLit],
    out: &PartitionOutcome,
    label: &str,
) {
    let mut probe = aig.clone();
    for &l in literals {
        probe.add_output(l);
    }
    let base = probe.num_outputs() - literals.len();
    let table = probe.simulate_all_inputs().expect("small input count");
    let column = |i: usize| &table[base + i];
    for class in &out.classes {
        let rep = column(class[0]);
        for &m in &class[1..] {
            assert_eq!(
                column(m),
                rep,
                "{label}: class member {m} disagrees with representative {}",
                class[0]
            );
        }
    }
    // Exactness the other way: distinct classes compute distinct
    // functions unless the partition was degraded to the identity.
    if !out.degraded {
        for (a, b) in out
            .classes
            .iter()
            .zip(out.classes.iter().skip(1))
            .map(|(x, y)| (x[0], y[0]))
        {
            assert_ne!(
                column(a),
                column(b),
                "{label}: adjacent class representatives {a} and {b} coincide"
            );
        }
    }
}

#[test]
fn classes_over_random_aigs_are_exact() {
    cases(24, |case, rng| {
        let aig = random_aig(&random_spec(rng));
        let literals = candidate_literals(&aig, rng);
        let out = partition_literals(&aig, &literals, rng.next_u64(), Some(100_000), None);
        let label = format!("case {case}");
        assert!(
            !out.degraded,
            "{label}: an ungoverned generous budget must not degrade"
        );
        assert_is_partition(&out, literals.len(), &label);
        assert_classes_exact_exhaustive(&aig, &literals, &out, &label);
    });
}

#[test]
fn classes_above_the_exhaustive_limit_are_verified_by_miter_sat() {
    // 22 inputs puts exhaustive simulation out of reach, so class
    // members are re-proven through the production CEC path instead.
    for seed in [7u64, 1881, 424242] {
        let spec = CircuitSpec {
            num_inputs: MAX_EXHAUSTIVE_INPUTS + 2,
            num_outputs: 4,
            num_gates: 160,
            seed,
        };
        let aig = random_aig(&spec);
        assert!(aig.simulate_all_inputs().is_err());
        let literals: Vec<AigLit> = aig.iter_nodes().map(|id| id.lit()).collect();
        let out = partition_literals(&aig, &literals, seed, None, None);
        assert!(!out.degraded, "seed {seed}");
        assert_is_partition(&out, literals.len(), &format!("seed {seed}"));
        // Pair every member with its representative across two probe
        // AIGs whose output lists line up position by position.
        let mut pr = aig.clone();
        let mut pm = aig.clone();
        let mut probes = 0usize;
        'outer: for class in &out.classes {
            for &m in &class[1..] {
                pr.add_output(literals[class[0]]);
                pm.add_output(literals[m]);
                probes += 1;
                if probes >= 40 {
                    break 'outer;
                }
            }
        }
        assert!(probes > 0, "seed {seed}: no merged class to verify");
        assert_eq!(
            check_equivalence(&pr, &pm, None),
            CecResult::Equivalent,
            "seed {seed}: class members must match their representatives"
        );
    }
}

fn random_fault_plan(rng: &mut Rng) -> Option<FaultPlan> {
    Some(match rng.below(5) {
        0 => return None,
        1 => FaultPlan::EveryNth(rng.below(4)),
        2 => FaultPlan::AtCalls((0..rng.range(1, 5)).map(|_| rng.range(1, 20)).collect()),
        3 => FaultPlan::Seeded {
            seed: rng.next_u64(),
            one_in: rng.range(1, 5),
        },
        _ => FaultPlan::CancelAt(rng.range(1, 12)),
    })
}

#[test]
fn chaos_degrades_the_partition_but_never_corrupts_it() {
    cases(24, |case, rng| {
        let aig = random_aig(&random_spec(rng));
        let literals = candidate_literals(&aig, rng);
        let governor = ResourceGovernor::new(GovernorLimits {
            global_conflicts: if rng.bool() {
                Some(rng.below(200))
            } else {
                None
            },
            fault_plan: random_fault_plan(rng),
            ..GovernorLimits::default()
        });
        let out = partition_literals(
            &aig,
            &literals,
            rng.next_u64(),
            Some(rng.below(50)),
            Some(&governor),
        );
        let label = format!("case {case}");
        if out.degraded {
            // A tripped partition falls back to singletons and
            // inherits nothing.
            assert_eq!(
                out.classes.len(),
                literals.len(),
                "{label}: degraded partitions must be the identity"
            );
            assert!(
                out.classes.iter().all(|c| c.len() == 1),
                "{label}: degraded classes must be singletons"
            );
            assert_eq!(out.stats.inherited_answers, 0, "{label}");
        }
        // Degraded or not, merged literals genuinely agree.
        assert_is_partition(&out, literals.len(), &label);
        assert_classes_exact_exhaustive(&aig, &literals, &out, &label);
    });
}

#[test]
fn partitioning_is_deterministic_for_a_fixed_seed() {
    cases(12, |case, rng| {
        let aig = random_aig(&random_spec(rng));
        let literals = candidate_literals(&aig, rng);
        let seed = rng.next_u64();
        let first = partition_literals(&aig, &literals, seed, None, None);
        let second = partition_literals(&aig, &literals, seed, None, None);
        assert_eq!(first.classes, second.classes, "case {case}");
        assert_eq!(first.sat_calls, second.sat_calls, "case {case}");
        assert_eq!(first.stats, second.stats, "case {case}");
        assert_eq!(first.degraded, second.degraded, "case {case}");
    });
}
