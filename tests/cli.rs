//! End-to-end tests of the `eco_patch` command-line binary.

use std::io::Write;
use std::process::Command;

const IMPLEMENTATION: &str = "
module adder (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire s1, c1, c2;
  // eco_target c1
  xor g1 (s1, a, b);
  xor g2 (sum, s1, cin);
  or  g3 (c1, a, b);
  and g4 (c2, s1, cin);
  or  g5 (cout, c1, c2);
endmodule
";

const SPECIFICATION: &str = "
module adder (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire s1, c1, c2;
  xor g1 (s1, a, b);
  xor g2 (sum, s1, cin);
  and g3 (c1, a, b);
  and g4 (c2, s1, cin);
  or  g5 (cout, c1, c2);
endmodule
";

struct TempFiles {
    dir: std::path::PathBuf,
}

impl TempFiles {
    fn new(tag: &str) -> TempFiles {
        let dir = std::env::temp_dir().join(format!("eco_cli_test_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        TempFiles { dir }
    }

    fn write(&self, name: &str, content: &str) -> String {
        let path = self.dir.join(name);
        let mut f = std::fs::File::create(&path).expect("create");
        f.write_all(content.as_bytes()).expect("write");
        path.to_string_lossy().into_owned()
    }

    fn path(&self, name: &str) -> String {
        self.dir.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempFiles {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eco_patch"))
}

#[test]
fn patches_with_directive_targets() {
    let tmp = TempFiles::new("directives");
    let f = tmp.write("F.v", IMPLEMENTATION);
    let g = tmp.write("G.v", SPECIFICATION);
    let w = tmp.write("W.txt", "a 10\nb 10\ns1 1\ncin 3\n");
    let out = tmp.path("patched.v");
    let status = bin()
        .args([
            "--impl",
            &f,
            "--spec",
            &g,
            "--weights",
            &w,
            "--method",
            "prune",
            "--out",
            &out,
        ])
        .output()
        .expect("run");
    assert!(
        status.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    let stderr = String::from_utf8_lossy(&status.stderr);
    assert!(stderr.contains("verified=true"), "{stderr}");
    // The emitted netlist must parse and be equivalent to the spec.
    let text = std::fs::read_to_string(&out).expect("read output");
    let patched = eco_patch::netlist::parse_verilog(&text)
        .expect("parse")
        .netlist;
    let spec = eco_patch::netlist::parse_verilog(SPECIFICATION)
        .expect("parse")
        .netlist;
    let a = patched.to_aig().expect("valid").aig;
    let b = spec.to_aig().expect("valid").aig;
    assert_eq!(
        eco_patch::core::check_equivalence(&a, &b, None),
        eco_patch::core::CecResult::Equivalent
    );
}

#[test]
fn detects_targets_without_directives() {
    let tmp = TempFiles::new("detect");
    let f = tmp.write("F.v", &IMPLEMENTATION.replace("// eco_target c1\n", ""));
    let g = tmp.write("G.v", SPECIFICATION);
    let output = bin()
        .args(["--impl", &f, "--spec", &g, "--detect"])
        .output()
        .expect("run");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("detected targets"), "{stderr}");
}

#[test]
fn missing_targets_is_a_clear_error() {
    let tmp = TempFiles::new("notargets");
    let f = tmp.write("F.v", &IMPLEMENTATION.replace("// eco_target c1\n", ""));
    let g = tmp.write("G.v", SPECIFICATION);
    let output = bin()
        .args(["--impl", &f, "--spec", &g])
        .output()
        .expect("run");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("no targets"), "{stderr}");
}

#[test]
fn bad_flags_print_usage() {
    let output = bin().args(["--nope"]).output().expect("run");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn stats_json_has_the_documented_schema() {
    let tmp = TempFiles::new("statsjson");
    let f = tmp.write("F.v", IMPLEMENTATION);
    let g = tmp.write("G.v", SPECIFICATION);
    let stats = tmp.path("stats.json");
    let out = tmp.path("patched.v");
    let output = bin()
        .args([
            "--impl",
            &f,
            "--spec",
            &g,
            "--stats-json",
            &stats,
            "--out",
            &out,
        ])
        .output()
        .expect("run");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let json = std::fs::read_to_string(&stats).expect("stats file written");
    for key in [
        "\"schema_version\":8",
        "\"num_targets\":1",
        "\"jobs\":1",
        "\"workers\":[",
        "\"phases\":[",
        "\"targets\":[",
        "\"sat_calls\":{",
        "\"by_kind\":{",
        "\"latency_histogram\":[",
        "\"counters\":{",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn stdout_is_pure_json_with_stats_dash() {
    let tmp = TempFiles::new("statsdash");
    let f = tmp.write("F.v", IMPLEMENTATION);
    let g = tmp.write("G.v", SPECIFICATION);
    let out = tmp.path("patched.v");
    let output = bin()
        .args([
            "--impl",
            &f,
            "--spec",
            &g,
            "--stats-json",
            "-",
            "--out",
            &out,
            "--progress",
        ])
        .output()
        .expect("run");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // Stream discipline: with --out and --stats-json -, stdout must be
    // exactly one parseable JSON document, nothing else.
    let stdout = String::from_utf8(output.stdout).expect("utf8 stdout");
    let value = eco_patch::core::json::parse_json(&stdout).expect("stdout parses as JSON");
    assert_eq!(
        value.get("schema_version").and_then(|v| v.as_u64()),
        Some(8),
        "stdout: {stdout}"
    );
}

#[test]
fn stats_dash_without_out_is_a_usage_error() {
    let tmp = TempFiles::new("statsdashnoout");
    let f = tmp.write("F.v", IMPLEMENTATION);
    let g = tmp.write("G.v", SPECIFICATION);
    let output = bin()
        .args(["--impl", &f, "--spec", &g, "--stats-json", "-"])
        .output()
        .expect("run");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("requires --out"), "{stderr}");
}

#[test]
fn trace_out_writes_jsonl_and_report_reads_it() {
    let tmp = TempFiles::new("tracejsonl");
    let f = tmp.write("F.v", IMPLEMENTATION);
    let g = tmp.write("G.v", SPECIFICATION);
    let out = tmp.path("patched.v");
    let trace = tmp.path("trace.jsonl");
    let output = bin()
        .args([
            "--impl",
            &f,
            "--spec",
            &g,
            "--out",
            &out,
            "--trace-out",
            &trace,
        ])
        .output()
        .expect("run");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(text.lines().count() > 4, "trace too short: {text}");
    for line in text.lines() {
        eco_patch::core::json::parse_json(line).expect("each trace line parses as JSON");
    }
    assert!(text.contains("\"event\":\"run_started\""), "{text}");
    assert!(text.contains("\"event\":\"run_finished\""), "{text}");

    let report = bin().args(["report", &trace]).output().expect("run report");
    assert!(
        report.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&report.stderr)
    );
    let stdout = String::from_utf8_lossy(&report.stdout);
    assert!(stdout.contains("phases:"), "{stdout}");
    assert!(stdout.contains("sat calls:"), "{stdout}");
    assert!(stdout.contains("most expensive calls"), "{stdout}");
}

#[test]
fn chrome_trace_is_valid_json() {
    let tmp = TempFiles::new("tracechrome");
    let f = tmp.write("F.v", IMPLEMENTATION);
    let g = tmp.write("G.v", SPECIFICATION);
    let out = tmp.path("patched.v");
    let trace = tmp.path("trace.json");
    let output = bin()
        .args([
            "--impl",
            &f,
            "--spec",
            &g,
            "--out",
            &out,
            "--trace-out",
            &trace,
            "--trace-format",
            "chrome",
        ])
        .output()
        .expect("run");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let value = eco_patch::core::json::parse_json(&text).expect("chrome trace parses as JSON");
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
}

#[test]
fn report_on_missing_file_errors_cleanly() {
    let output = bin()
        .args(["report", "/nonexistent/trace.jsonl"])
        .output()
        .expect("run");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn unknown_trace_format_is_a_usage_error() {
    let tmp = TempFiles::new("badtraceformat");
    let f = tmp.write("F.v", IMPLEMENTATION);
    let g = tmp.write("G.v", SPECIFICATION);
    let output = bin()
        .args([
            "--impl",
            &f,
            "--spec",
            &g,
            "--trace-out",
            "t.json",
            "--trace-format",
            "xml",
        ])
        .output()
        .expect("run");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown trace format"), "{stderr}");
}

#[test]
fn progress_traces_phases_and_quiet_silences_reports() {
    let tmp = TempFiles::new("progress");
    let f = tmp.write("F.v", IMPLEMENTATION);
    let g = tmp.write("G.v", SPECIFICATION);
    let out = tmp.path("patched.v");
    let output = bin()
        .args([
            "--impl",
            &f,
            "--spec",
            &g,
            "--progress",
            "--quiet",
            "--out",
            &out,
        ])
        .output()
        .expect("run");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("[eco] sufficiency_check"), "{stderr}");
    assert!(stderr.contains("[eco] verification done"), "{stderr}");
    assert!(
        !stderr.contains("solved:"),
        "--quiet must drop the report: {stderr}"
    );
}

#[test]
fn unknown_method_is_a_usage_error() {
    let tmp = TempFiles::new("badmethod");
    let f = tmp.write("F.v", IMPLEMENTATION);
    let g = tmp.write("G.v", SPECIFICATION);
    let output = bin()
        .args(["--impl", &f, "--spec", &g, "--method", "magic"])
        .output()
        .expect("run");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown method"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn insufficient_targets_exit_code() {
    // y0 = t and y1 = !t cannot both become `a` with one patch on t.
    let implementation = "
module m (a, b, y0, y1);
  input a, b;
  output y0, y1;
  wire t;
  // eco_target t
  and g1 (t, a, b);
  buf g2 (y0, t);
  not g3 (y1, t);
endmodule
";
    let specification = "
module m (a, b, y0, y1);
  input a, b;
  output y0, y1;
  buf g1 (y0, a);
  buf g2 (y1, a);
endmodule
";
    let tmp = TempFiles::new("insufficient");
    let f = tmp.write("F.v", implementation);
    let g = tmp.write("G.v", specification);
    let output = bin()
        .args(["--impl", &f, "--spec", &g])
        .output()
        .expect("run");
    assert_eq!(
        output.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn budget_exhaustion_exit_code_without_fallback() {
    let tmp = TempFiles::new("budget");
    let f = tmp.write("F.v", IMPLEMENTATION);
    let g = tmp.write("G.v", SPECIFICATION);
    let output = bin()
        .args(["--impl", &f, "--spec", &g, "--budget", "0", "--no-fallback"])
        .output()
        .expect("run");
    assert_eq!(
        output.status.code(),
        Some(4),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("budget"), "{stderr}");
}

#[test]
fn expired_deadline_exit_code_with_anytime_output() {
    let tmp = TempFiles::new("deadline");
    let f = tmp.write("F.v", IMPLEMENTATION);
    let g = tmp.write("G.v", SPECIFICATION);
    let out = tmp.path("patched.v");
    let output = bin()
        .args([
            "--impl",
            &f,
            "--spec",
            &g,
            "--timeout-ms",
            "0",
            "--out",
            &out,
        ])
        .output()
        .expect("run");
    assert_eq!(
        output.status.code(),
        Some(5),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("governor tripped (deadline"), "{stderr}");
    assert!(stderr.contains("skipped: deadline"), "{stderr}");
    // The anytime netlist is still written before exiting.
    assert!(
        std::path::Path::new(&out).exists(),
        "output must be written even on deadline"
    );
}

#[test]
fn deadline_error_exit_code_without_fallback() {
    let tmp = TempFiles::new("deadline_nofb");
    let f = tmp.write("F.v", IMPLEMENTATION);
    let g = tmp.write("G.v", SPECIFICATION);
    let output = bin()
        .args([
            "--impl",
            &f,
            "--spec",
            &g,
            "--timeout-ms",
            "0",
            "--no-fallback",
        ])
        .output()
        .expect("run");
    assert_eq!(
        output.status.code(),
        Some(5),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("deadline"), "{stderr}");
}

#[test]
fn missing_files_error_cleanly() {
    let output = bin()
        .args(["--impl", "/nonexistent/F.v", "--spec", "/nonexistent/G.v"])
        .output()
        .expect("run");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}
