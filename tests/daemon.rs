//! End-to-end tests of the `eco_patchd` binary: a JSONL session over
//! stdin/stdout exercising the outcome cache (identical repeat →
//! zero SAT calls, byte-identical patched netlist), the engine-side
//! layers (one-gate spec revision → solved-target reuse for the
//! untouched cone), and the stats/shutdown commands. The CI
//! daemon-smoke job runs exactly this test.

use eco_patch::core::json::{escape_json, parse_json, JsonValue};
use std::io::Write;
use std::process::{Command, Stdio};

/// Implementation: two independently patchable gates with disjoint
/// output cones.
const IMPLEMENTATION: &str = "module top(a, b, c, d, y0, y1);\n\
input a, b, c, d;\noutput y0, y1;\nwire t0, t1;\n\
and g0(t0, a, b);\nand g1(t1, c, d);\n\
buf g2(y0, t0);\nbuf g3(y1, t1);\nendmodule\n";

/// Specification: both gates should have been ORs.
const SPECIFICATION: &str = "module top(a, b, c, d, y0, y1);\n\
input a, b, c, d;\noutput y0, y1;\nwire t0, t1;\n\
or g0(t0, a, b);\nor g1(t1, c, d);\n\
buf g2(y0, t0);\nbuf g3(y1, t1);\nendmodule\n";

/// One-gate revision of the specification: only `t1`'s cone changes.
const REVISED_SPEC: &str = "module top(a, b, c, d, y0, y1);\n\
input a, b, c, d;\noutput y0, y1;\nwire t0, t1;\n\
or g0(t0, a, b);\nxor g1(t1, c, d);\n\
buf g2(y0, t0);\nbuf g3(y1, t1);\nendmodule\n";

fn eco_line(id: &str, spec: &str) -> String {
    format!(
        "{{\"id\":\"{id}\",\"impl\":\"{}\",\"spec\":\"{}\",\"targets\":[\"t0\",\"t1\"]}}",
        escape_json(IMPLEMENTATION),
        escape_json(spec)
    )
}

/// Runs a JSONL session through the daemon binary and returns one
/// parsed response per request line.
fn run_session(session: &str) -> Vec<JsonValue> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_eco_patchd"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn eco_patchd");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(session.as_bytes())
        .expect("write session");
    let output = child.wait_with_output().expect("daemon exits");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout)
        .expect("UTF-8 responses")
        .lines()
        .map(|line| parse_json(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}")))
        .collect()
}

fn cache_flag<'a>(response: &'a JsonValue, layer: &str) -> Option<&'a str> {
    response
        .get("cache")
        .and_then(|c| c.get(layer))
        .and_then(JsonValue::as_str)
}

fn counter(response: &JsonValue, name: &str) -> Option<u64> {
    response
        .get("metrics")
        .and_then(|m| m.get("cache"))
        .and_then(|c| c.get(name))
        .and_then(JsonValue::as_u64)
}

#[test]
fn smoke_session_repeat_hits_the_outcome_cache_with_identical_output() {
    // Three ECO requests: cold, identical repeat, one-gate revision.
    let session = format!(
        "{}\n{}\n{}\n{{\"id\":\"s\",\"cmd\":\"stats\"}}\n{{\"id\":\"q\",\"cmd\":\"shutdown\"}}\n",
        eco_line("cold", SPECIFICATION),
        eco_line("warm", SPECIFICATION),
        eco_line("revised", REVISED_SPEC),
    );
    let responses = run_session(&session);
    assert_eq!(responses.len(), 5, "one response per request line");
    let (cold, warm, revised, stats, bye) = (
        &responses[0],
        &responses[1],
        &responses[2],
        &responses[3],
        &responses[4],
    );
    for (name, r) in [("cold", cold), ("warm", warm), ("revised", revised)] {
        assert_eq!(
            r.get("status").and_then(JsonValue::as_str),
            Some("ok"),
            "{name}"
        );
        assert_eq!(
            r.get("verified").and_then(JsonValue::as_bool),
            Some(true),
            "{name}"
        );
    }

    // Cold run: outcome miss, real SAT work, request id in metrics.
    assert_eq!(cache_flag(cold, "outcome"), Some("miss"));
    let cold_sat = cold
        .get("metrics")
        .and_then(|m| m.get("sat_calls"))
        .and_then(|s| s.get("total"))
        .and_then(JsonValue::as_u64)
        .expect("cold metrics have SAT totals");
    assert!(cold_sat > 0, "the cold run must do solver work");
    assert_eq!(
        cold.get("metrics")
            .and_then(|m| m.get("request_id"))
            .and_then(JsonValue::as_str),
        Some("cold")
    );

    // Identical repeat: outcome hit, zero SAT calls, byte-identical
    // patched netlist.
    assert_eq!(cache_flag(warm, "outcome"), Some("hit"));
    let warm_sat = warm
        .get("metrics")
        .and_then(|m| m.get("sat_calls"))
        .and_then(|s| s.get("total"))
        .and_then(JsonValue::as_u64);
    assert_eq!(warm_sat, Some(0), "an outcome hit performs zero SAT calls");
    assert_eq!(counter(warm, "outcome_hits"), Some(1));
    let cold_patched = cold.get("patched_verilog").and_then(JsonValue::as_str);
    assert!(cold_patched.is_some_and(|v| v.contains("module")));
    assert_eq!(
        cold_patched,
        warm.get("patched_verilog").and_then(JsonValue::as_str),
        "replayed patched netlist must be byte-identical"
    );
    assert_eq!(
        warm.get("metrics")
            .and_then(|m| m.get("request_id"))
            .and_then(JsonValue::as_str),
        Some("warm"),
        "each request's metrics carry its own id"
    );

    // One-gate spec revision: outcome misses, but the implementation
    // netlist text and target t0's untouched cone are served from the
    // caches — visible in the per-request hit/miss counters.
    assert_eq!(cache_flag(revised, "outcome"), Some("miss"));
    assert_eq!(
        counter(revised, "netlist_hits"),
        Some(1),
        "impl text is cached"
    );
    assert_eq!(
        counter(revised, "netlist_misses"),
        Some(1),
        "revised spec is new"
    );
    assert!(
        counter(revised, "target_hits").is_some_and(|h| h >= 1),
        "the untouched target must be served from the solved-target layer: {revised:?}"
    );

    // Stats reflect the session; shutdown acknowledges and stops.
    let engine_stats = stats.get("stats").expect("stats payload");
    assert_eq!(
        engine_stats.get("outcome_hits").and_then(JsonValue::as_u64),
        Some(1)
    );
    assert_eq!(
        engine_stats
            .get("outcome_misses")
            .and_then(JsonValue::as_u64),
        Some(2)
    );
    assert_eq!(bye.get("shutdown").and_then(JsonValue::as_bool), Some(true));
}

#[test]
fn malformed_and_failing_requests_answer_with_errors_and_keep_serving() {
    let session = format!(
        "not json\n{{\"id\":\"bad\",\"impl\":\"junk\",\"spec\":\"junk\",\"targets\":[\"t\"]}}\n{}\n",
        eco_line("ok", SPECIFICATION)
    );
    let responses = run_session(&session);
    assert_eq!(responses.len(), 3);
    assert_eq!(
        responses[0].get("status").and_then(JsonValue::as_str),
        Some("error")
    );
    assert_eq!(
        responses[1].get("status").and_then(JsonValue::as_str),
        Some("error")
    );
    assert_eq!(
        responses[1].get("id").and_then(JsonValue::as_str),
        Some("bad")
    );
    assert_eq!(
        responses[2].get("status").and_then(JsonValue::as_str),
        Some("ok"),
        "errors must not poison the stream"
    );
}

#[test]
fn per_request_deadline_degrades_one_request_without_caching_it() {
    // A request with an already-expired deadline yields an anytime
    // answer (governor trip reported); repeating it without the
    // deadline must NOT hit the outcome cache — pressured results are
    // never stored.
    let strained = format!(
        "{{\"id\":\"strained\",\"impl\":\"{}\",\"spec\":\"{}\",\"targets\":[\"t0\",\"t1\"],\
         \"options\":{{\"deadline_ms\":0}}}}",
        escape_json(IMPLEMENTATION),
        escape_json(SPECIFICATION)
    );
    let session = format!("{strained}\n{}\n", eco_line("clean", SPECIFICATION));
    let responses = run_session(&session);
    assert_eq!(responses.len(), 2);
    let strained = &responses[0];
    assert_eq!(
        strained.get("status").and_then(JsonValue::as_str),
        Some("ok")
    );
    assert!(
        strained
            .get("governor_trip")
            .and_then(JsonValue::as_str)
            .is_some(),
        "a zero deadline must trip: {strained:?}"
    );
    let clean = &responses[1];
    assert_eq!(cache_flag(clean, "outcome"), Some("miss"));
    assert_eq!(
        clean.get("verified").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(clean.get("governor_trip"), Some(&JsonValue::Null));
}
