//! End-to-end tests of the `eco_patchd` binary: a JSONL session over
//! stdin/stdout exercising the outcome cache (identical repeat →
//! zero SAT calls, byte-identical patched netlist), the engine-side
//! layers (one-gate spec revision → solved-target reuse for the
//! untouched cone), the stats/shutdown commands, and the resilience
//! layer — a chaos session raining worker panics, overload sheds,
//! queue-expired deadlines, and a drain on a pooled daemon while every
//! healthy answer stays byte-identical to an unfaulted run. The CI
//! daemon-smoke and chaos-smoke jobs run exactly these tests.

use eco_patch::core::json::{escape_json, parse_json, JsonValue};
use std::io::Write;
use std::process::{Command, Stdio};
use std::time::Duration;

/// Implementation: two independently patchable gates with disjoint
/// output cones.
const IMPLEMENTATION: &str = "module top(a, b, c, d, y0, y1);\n\
input a, b, c, d;\noutput y0, y1;\nwire t0, t1;\n\
and g0(t0, a, b);\nand g1(t1, c, d);\n\
buf g2(y0, t0);\nbuf g3(y1, t1);\nendmodule\n";

/// Specification: both gates should have been ORs.
const SPECIFICATION: &str = "module top(a, b, c, d, y0, y1);\n\
input a, b, c, d;\noutput y0, y1;\nwire t0, t1;\n\
or g0(t0, a, b);\nor g1(t1, c, d);\n\
buf g2(y0, t0);\nbuf g3(y1, t1);\nendmodule\n";

/// One-gate revision of the specification: only `t1`'s cone changes.
const REVISED_SPEC: &str = "module top(a, b, c, d, y0, y1);\n\
input a, b, c, d;\noutput y0, y1;\nwire t0, t1;\n\
or g0(t0, a, b);\nxor g1(t1, c, d);\n\
buf g2(y0, t0);\nbuf g3(y1, t1);\nendmodule\n";

fn eco_line(id: &str, spec: &str) -> String {
    format!(
        "{{\"id\":\"{id}\",\"impl\":\"{}\",\"spec\":\"{}\",\"targets\":[\"t0\",\"t1\"]}}",
        escape_json(IMPLEMENTATION),
        escape_json(spec)
    )
}

fn eco_line_with_options(id: &str, spec: &str, options: &str) -> String {
    format!(
        "{{\"id\":\"{id}\",\"impl\":\"{}\",\"spec\":\"{}\",\"targets\":[\"t0\",\"t1\"],\
         \"options\":{options}}}",
        escape_json(IMPLEMENTATION),
        escape_json(spec)
    )
}

/// Runs a JSONL session through the daemon binary and returns one
/// parsed response per request line.
fn run_session(session: &str) -> Vec<JsonValue> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_eco_patchd"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn eco_patchd");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(session.as_bytes())
        .expect("write session");
    let output = child.wait_with_output().expect("daemon exits");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout)
        .expect("UTF-8 responses")
        .lines()
        .map(|line| parse_json(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}")))
        .collect()
}

/// Runs a staged JSONL session through the daemon binary with extra
/// CLI arguments: each stage is written after its delay, pacing the
/// session so overload and drain states are reached deterministically.
/// Asserts a clean exit and returns the parsed response lines.
fn run_staged_session(args: &[&str], stages: &[(u64, String)]) -> Vec<JsonValue> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_eco_patchd"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn eco_patchd");
    let mut stdin = child.stdin.take().expect("stdin piped");
    let stages: Vec<(u64, String)> = stages.to_vec();
    let writer = std::thread::spawn(move || {
        for (delay_ms, text) in stages {
            std::thread::sleep(Duration::from_millis(delay_ms));
            stdin.write_all(text.as_bytes()).expect("write stage");
            stdin.flush().expect("flush stage");
        }
        // Dropping stdin closes the stream: accepted work drains,
        // then the daemon exits.
    });
    let output = child.wait_with_output().expect("daemon exits");
    writer.join().expect("writer thread");
    assert!(
        output.status.success(),
        "daemon must exit cleanly; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout)
        .expect("UTF-8 responses")
        .lines()
        .map(|line| parse_json(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}")))
        .collect()
}

fn cache_flag<'a>(response: &'a JsonValue, layer: &str) -> Option<&'a str> {
    response
        .get("cache")
        .and_then(|c| c.get(layer))
        .and_then(JsonValue::as_str)
}

fn counter(response: &JsonValue, name: &str) -> Option<u64> {
    response
        .get("metrics")
        .and_then(|m| m.get("cache"))
        .and_then(|c| c.get(name))
        .and_then(JsonValue::as_u64)
}

#[test]
fn smoke_session_repeat_hits_the_outcome_cache_with_identical_output() {
    // Three ECO requests: cold, identical repeat, one-gate revision.
    let session = format!(
        "{}\n{}\n{}\n{{\"id\":\"s\",\"cmd\":\"stats\"}}\n{{\"id\":\"q\",\"cmd\":\"shutdown\"}}\n",
        eco_line("cold", SPECIFICATION),
        eco_line("warm", SPECIFICATION),
        eco_line("revised", REVISED_SPEC),
    );
    let responses = run_session(&session);
    assert_eq!(responses.len(), 5, "one response per request line");
    let (cold, warm, revised, stats, bye) = (
        &responses[0],
        &responses[1],
        &responses[2],
        &responses[3],
        &responses[4],
    );
    for (name, r) in [("cold", cold), ("warm", warm), ("revised", revised)] {
        assert_eq!(
            r.get("status").and_then(JsonValue::as_str),
            Some("ok"),
            "{name}"
        );
        assert_eq!(
            r.get("verified").and_then(JsonValue::as_bool),
            Some(true),
            "{name}"
        );
    }

    // Cold run: outcome miss, real SAT work, request id in metrics.
    assert_eq!(cache_flag(cold, "outcome"), Some("miss"));
    let cold_sat = cold
        .get("metrics")
        .and_then(|m| m.get("sat_calls"))
        .and_then(|s| s.get("total"))
        .and_then(JsonValue::as_u64)
        .expect("cold metrics have SAT totals");
    assert!(cold_sat > 0, "the cold run must do solver work");
    assert_eq!(
        cold.get("metrics")
            .and_then(|m| m.get("request_id"))
            .and_then(JsonValue::as_str),
        Some("cold")
    );

    // Identical repeat: outcome hit, zero SAT calls, byte-identical
    // patched netlist.
    assert_eq!(cache_flag(warm, "outcome"), Some("hit"));
    let warm_sat = warm
        .get("metrics")
        .and_then(|m| m.get("sat_calls"))
        .and_then(|s| s.get("total"))
        .and_then(JsonValue::as_u64);
    assert_eq!(warm_sat, Some(0), "an outcome hit performs zero SAT calls");
    assert_eq!(counter(warm, "outcome_hits"), Some(1));
    let cold_patched = cold.get("patched_verilog").and_then(JsonValue::as_str);
    assert!(cold_patched.is_some_and(|v| v.contains("module")));
    assert_eq!(
        cold_patched,
        warm.get("patched_verilog").and_then(JsonValue::as_str),
        "replayed patched netlist must be byte-identical"
    );
    assert_eq!(
        warm.get("metrics")
            .and_then(|m| m.get("request_id"))
            .and_then(JsonValue::as_str),
        Some("warm"),
        "each request's metrics carry its own id"
    );

    // One-gate spec revision: outcome misses, but the implementation
    // netlist text and target t0's untouched cone are served from the
    // caches — visible in the per-request hit/miss counters.
    assert_eq!(cache_flag(revised, "outcome"), Some("miss"));
    assert_eq!(
        counter(revised, "netlist_hits"),
        Some(1),
        "impl text is cached"
    );
    assert_eq!(
        counter(revised, "netlist_misses"),
        Some(1),
        "revised spec is new"
    );
    assert!(
        counter(revised, "target_hits").is_some_and(|h| h >= 1),
        "the untouched target must be served from the solved-target layer: {revised:?}"
    );

    // Stats reflect the session; shutdown acknowledges and stops.
    let engine_stats = stats.get("stats").expect("stats payload");
    assert_eq!(
        engine_stats.get("outcome_hits").and_then(JsonValue::as_u64),
        Some(1)
    );
    assert_eq!(
        engine_stats
            .get("outcome_misses")
            .and_then(JsonValue::as_u64),
        Some(2)
    );
    assert_eq!(bye.get("shutdown").and_then(JsonValue::as_bool), Some(true));
}

#[test]
fn sweeping_requests_replay_as_zero_sat_call_outcome_hits() {
    // Warm replay with `"sweep":true` must behave exactly like the
    // unswept smoke session: the cold swept run does real (reduced)
    // SAT work, the identical repeat is an outcome hit with zero SAT
    // calls, and both patched netlists are byte-identical to an
    // unswept run of the same request.
    let session = format!(
        "{}\n{}\n{}\n",
        eco_line("plain", SPECIFICATION),
        eco_line_with_options("cold", SPECIFICATION, "{\"sweep\":true}"),
        eco_line_with_options("warm", SPECIFICATION, "{\"sweep\":true}"),
    );
    let responses = run_session(&session);
    assert_eq!(responses.len(), 3);
    let (plain, cold, warm) = (&responses[0], &responses[1], &responses[2]);
    for (name, r) in [("plain", plain), ("cold", cold), ("warm", warm)] {
        assert_eq!(
            r.get("status").and_then(JsonValue::as_str),
            Some("ok"),
            "{name}"
        );
        assert_eq!(
            r.get("verified").and_then(JsonValue::as_bool),
            Some(true),
            "{name}"
        );
    }
    let sat_total = |r: &JsonValue| {
        r.get("metrics")
            .and_then(|m| m.get("sat_calls"))
            .and_then(|s| s.get("total"))
            .and_then(JsonValue::as_u64)
    };
    assert_eq!(cache_flag(cold, "outcome"), Some("miss"));
    let plain_sat = sat_total(plain).expect("unswept SAT totals");
    let cold_sat = sat_total(cold).expect("swept SAT totals");
    assert!(cold_sat > 0, "the cold swept run must do solver work");
    assert!(
        cold_sat <= plain_sat,
        "sweeping must not add SAT calls: {cold_sat} > {plain_sat}"
    );
    assert_eq!(cache_flag(warm, "outcome"), Some("hit"));
    assert_eq!(
        sat_total(warm),
        Some(0),
        "a swept outcome hit performs zero SAT calls"
    );
    let patched = |r: &JsonValue| {
        r.get("patched_verilog")
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
    };
    assert!(patched(plain).is_some_and(|v| v.contains("module")));
    assert_eq!(
        patched(plain),
        patched(cold),
        "sweeping must not move a byte of the patched netlist"
    );
    assert_eq!(patched(cold), patched(warm), "replay is byte-identical");
}

#[test]
fn classed_requests_replay_as_zero_sat_call_outcome_hits() {
    // Same contract as the swept replay test, for `"classes":true`:
    // the cold classed run engages the equivalence-class layer (its
    // counters reach the response metrics), the identical repeat is an
    // outcome hit with zero SAT calls, and the patched netlist is
    // byte-identical to a classless run of the same request. The
    // classed request goes FIRST: `options_fingerprint` deliberately
    // shares engine-cache entries across the verdict-preserving
    // `classes` flag, so a preceding classless run would satisfy the
    // per-target work from cache and the layer would never engage.
    let session = format!(
        "{}\n{}\n{}\n",
        eco_line_with_options("cold", SPECIFICATION, "{\"classes\":true}"),
        eco_line_with_options("warm", SPECIFICATION, "{\"classes\":true}"),
        eco_line("plain", SPECIFICATION),
    );
    let responses = run_session(&session);
    assert_eq!(responses.len(), 3);
    let (cold, warm, plain) = (&responses[0], &responses[1], &responses[2]);
    for (name, r) in [("cold", cold), ("warm", warm), ("plain", plain)] {
        assert_eq!(
            r.get("status").and_then(JsonValue::as_str),
            Some("ok"),
            "{name}"
        );
        assert_eq!(
            r.get("verified").and_then(JsonValue::as_bool),
            Some(true),
            "{name}"
        );
    }
    let metric = |r: &JsonValue, path: [&str; 2]| {
        r.get("metrics")
            .and_then(|m| m.get(path[0]))
            .and_then(|s| s.get(path[1]))
            .and_then(JsonValue::as_u64)
    };
    assert_eq!(cache_flag(cold, "outcome"), Some("miss"));
    let cold_sat = metric(cold, ["sat_calls", "total"]).expect("classed SAT totals");
    assert!(cold_sat > 0, "the cold classed run must do solver work");
    assert!(
        metric(cold, ["classes", "partitions"]).expect("v8 classes block") > 0,
        "the cold run's class partitions must reach the daemon metrics"
    );
    assert_eq!(cache_flag(warm, "outcome"), Some("hit"));
    assert_eq!(
        metric(warm, ["sat_calls", "total"]),
        Some(0),
        "a classed outcome hit performs zero SAT calls"
    );
    assert_eq!(
        metric(warm, ["classes", "inherited_answers"]),
        Some(0),
        "a replay inherits nothing — the stored outcome is returned as-is"
    );
    assert_eq!(
        metric(plain, ["classes", "partitions"]),
        Some(0),
        "a classless run reports empty class counters"
    );
    let patched = |r: &JsonValue| {
        r.get("patched_verilog")
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
    };
    assert!(patched(cold).is_some_and(|v| v.contains("module")));
    assert_eq!(
        patched(cold),
        patched(plain),
        "classes must not move a byte of the patched netlist"
    );
    assert_eq!(patched(cold), patched(warm), "replay is byte-identical");
}

#[test]
fn malformed_and_failing_requests_answer_with_errors_and_keep_serving() {
    let session = format!(
        "not json\n{{\"id\":\"bad\",\"impl\":\"junk\",\"spec\":\"junk\",\"targets\":[\"t\"]}}\n{}\n",
        eco_line("ok", SPECIFICATION)
    );
    let responses = run_session(&session);
    assert_eq!(responses.len(), 3);
    assert_eq!(
        responses[0].get("status").and_then(JsonValue::as_str),
        Some("error")
    );
    assert_eq!(
        responses[1].get("status").and_then(JsonValue::as_str),
        Some("error")
    );
    assert_eq!(
        responses[1].get("id").and_then(JsonValue::as_str),
        Some("bad")
    );
    assert_eq!(
        responses[2].get("status").and_then(JsonValue::as_str),
        Some("ok"),
        "errors must not poison the stream"
    );
}

#[test]
fn per_request_deadline_degrades_one_request_without_caching_it() {
    // A request with an already-expired deadline yields an anytime
    // answer (governor trip reported); repeating it without the
    // deadline must NOT hit the outcome cache — pressured results are
    // never stored.
    let strained = format!(
        "{{\"id\":\"strained\",\"impl\":\"{}\",\"spec\":\"{}\",\"targets\":[\"t0\",\"t1\"],\
         \"options\":{{\"deadline_ms\":0}}}}",
        escape_json(IMPLEMENTATION),
        escape_json(SPECIFICATION)
    );
    let session = format!("{strained}\n{}\n", eco_line("clean", SPECIFICATION));
    let responses = run_session(&session);
    assert_eq!(responses.len(), 2);
    let strained = &responses[0];
    assert_eq!(
        strained.get("status").and_then(JsonValue::as_str),
        Some("ok")
    );
    assert!(
        strained
            .get("governor_trip")
            .and_then(JsonValue::as_str)
            .is_some(),
        "a zero deadline must trip: {strained:?}"
    );
    let clean = &responses[1];
    assert_eq!(cache_flag(clean, "outcome"), Some("miss"));
    assert_eq!(
        clean.get("verified").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(clean.get("governor_trip"), Some(&JsonValue::Null));
}

fn eco_line_opts(id: &str, spec: &str, options: &str) -> String {
    format!(
        "{{\"id\":\"{id}\",\"impl\":\"{}\",\"spec\":\"{}\",\"targets\":[\"t0\",\"t1\"],\
         \"options\":{options}}}",
        escape_json(IMPLEMENTATION),
        escape_json(spec)
    )
}

fn answer_fields(response: &JsonValue) -> (Option<&str>, Option<bool>, Option<u64>, Option<u64>) {
    (
        response.get("patched_verilog").and_then(JsonValue::as_str),
        response.get("verified").and_then(JsonValue::as_bool),
        response.get("cost").and_then(JsonValue::as_u64),
        response.get("gates").and_then(JsonValue::as_u64),
    )
}

/// The acceptance scenario for the resilience layer: one pooled chaos
/// session combining an injected worker panic (fresh + poisoned
/// retry), an overload shed, a deadline expired in queue, a health
/// probe, and a graceful drain — and every *healthy* request must be
/// answered byte-identically to an unfaulted single-worker run, with
/// the daemon exiting 0.
#[test]
fn chaos_session_answers_healthy_requests_byte_identically_and_exits_cleanly() {
    // Unfaulted reference run: the two healthy payloads, no chaos.
    let baseline = run_session(&format!(
        "{}\n{}\n",
        eco_line("base_spec", SPECIFICATION),
        eco_line("base_revised", REVISED_SPEC)
    ));
    assert_eq!(baseline.len(), 2);
    let expected_spec = answer_fields(&baseline[0]);
    let expected_revised = answer_fields(&baseline[1]);
    assert!(expected_spec.0.is_some_and(|v| v.contains("module")));

    // Chaos run: 2 workers, a 2-deep queue, chaos hooks armed.
    let stages = [
        // Two held requests park both workers.
        (
            0,
            format!(
                "{}\n{}\n",
                eco_line_opts("hold_a", SPECIFICATION, "{\"hold_ms\":500}"),
                eco_line_opts("hold_b", REVISED_SPEC, "{\"hold_ms\":500}")
            ),
        ),
        // Workers busy: fill the queue (`queued`, `expired`), then
        // overflow it (`shed_me`). `expired`'s deadline has already
        // passed by the time a worker frees up.
        (
            150,
            format!(
                "{}\n{}\n{}\n",
                eco_line("queued", SPECIFICATION),
                eco_line_opts("expired", SPECIFICATION, "{\"deadline_ms\":1}"),
                eco_line("shed_me", SPECIFICATION)
            ),
        ),
        // Backlog drained: crash a worker mid-solve.
        (
            900,
            format!(
                "{}\n",
                eco_line_opts("boom", SPECIFICATION, "{\"inject_panic\":true}")
            ),
        ),
        // Identical payload again: the poison pill answers instantly
        // instead of crashing a second worker.
        (
            400,
            format!(
                "{}\n",
                eco_line_opts("boom_again", SPECIFICATION, "{\"inject_panic\":true}")
            ),
        ),
        // Observe, then wind down gracefully; a request after the
        // drain must be refused, not queued.
        (
            300,
            "{\"id\":\"h\",\"cmd\":\"health\"}\n{\"id\":\"d\",\"cmd\":\"drain\"}\n".to_string(),
        ),
        (100, format!("{}\n", eco_line("too_late", SPECIFICATION))),
    ];
    let responses = run_staged_session(
        &["--workers", "2", "--queue-capacity", "2", "--chaos"],
        &stages,
    );
    let mut by_id = std::collections::HashMap::new();
    for r in &responses {
        let id = r
            .get("id")
            .and_then(JsonValue::as_str)
            .expect("every response carries an id")
            .to_string();
        by_id.insert(id, r);
    }

    // Every healthy request answered, byte-identical to the baseline.
    for (id, expected) in [
        ("hold_a", &expected_spec),
        ("hold_b", &expected_revised),
        ("queued", &expected_spec),
    ] {
        let r = by_id[id];
        assert_eq!(
            r.get("status").and_then(JsonValue::as_str),
            Some("ok"),
            "{id}: {r:?}"
        );
        assert_eq!(
            &answer_fields(r),
            expected,
            "{id} must match the unfaulted run byte-for-byte"
        );
    }

    // The faults all got their structured answers.
    let shed = by_id["shed_me"];
    assert_eq!(
        shed.get("status").and_then(JsonValue::as_str),
        Some("overloaded"),
        "{responses:?}"
    );
    assert!(shed
        .get("retry_after_ms")
        .and_then(JsonValue::as_u64)
        .is_some_and(|ms| ms > 0));
    let expired = by_id["expired"];
    assert_eq!(
        expired.get("status").and_then(JsonValue::as_str),
        Some("expired"),
        "{responses:?}"
    );
    let boom = by_id["boom"];
    assert_eq!(
        boom.get("status").and_then(JsonValue::as_str),
        Some("panic")
    );
    assert_eq!(
        boom.get("poisoned").and_then(JsonValue::as_bool),
        Some(false),
        "first crash is fresh"
    );
    let boom_again = by_id["boom_again"];
    assert_eq!(
        boom_again.get("status").and_then(JsonValue::as_str),
        Some("panic")
    );
    assert_eq!(
        boom_again.get("poisoned").and_then(JsonValue::as_bool),
        Some(true),
        "identical retry must hit the poison pill: {boom_again:?}"
    );
    assert_eq!(
        by_id["d"].get("draining").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(
        by_id["too_late"].get("status").and_then(JsonValue::as_str),
        Some("draining")
    );

    // Health saw it all happen.
    let health = by_id["h"].get("health").expect("health payload");
    assert_eq!(health.get("shed").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(health.get("expired").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(health.get("panicked").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(
        health.get("poison_pills").and_then(JsonValue::as_u64),
        Some(1)
    );
}

/// The observability acceptance scenario: the chaos session again
/// (shed + expired + panic + drain), but served with `--log-jsonl` and
/// `--trace-out`, scraped twice through the `metrics` command. The
/// Prometheus exposition must parse and agree with the `health`
/// serving counters, the journal's event sequence must reconstruct
/// the same counts, the merged Chrome trace must nest every solved
/// request's engine spans under a daemon lifecycle span carrying its
/// request id — and the solved answers must stay byte-identical to a
/// telemetry-disabled run.
#[test]
fn observability_session_metrics_journal_and_trace_agree() {
    // Telemetry-disabled reference run.
    let baseline = run_session(&format!(
        "{}\n{}\n",
        eco_line("base_spec", SPECIFICATION),
        eco_line("base_revised", REVISED_SPEC)
    ));
    assert_eq!(baseline.len(), 2);
    let expected_spec = answer_fields(&baseline[0]);
    let expected_revised = answer_fields(&baseline[1]);
    assert!(expected_spec.0.is_some_and(|v| v.contains("module")));

    let dir = std::env::temp_dir().join(format!("eco_patchd_obs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let journal_path = dir.join("journal.jsonl");
    let trace_path = dir.join("trace.json");

    let stages = [
        // Two held requests park both workers; `hold_a` carries a
        // client-supplied trace id.
        (
            0,
            format!(
                "{}\n{}\n",
                eco_line_opts(
                    "hold_a",
                    SPECIFICATION,
                    "{\"hold_ms\":500,\"trace_id\":\"client-lane-a\"}"
                ),
                eco_line_opts("hold_b", REVISED_SPEC, "{\"hold_ms\":500}")
            ),
        ),
        // Fill the queue (`queued`, `expired`), then overflow it.
        (
            150,
            format!(
                "{}\n{}\n{}\n",
                eco_line("queued", SPECIFICATION),
                eco_line_opts("expired", SPECIFICATION, "{\"deadline_ms\":1}"),
                eco_line("shed_me", SPECIFICATION)
            ),
        ),
        // Backlog drained: crash a worker mid-solve.
        (
            900,
            format!(
                "{}\n",
                eco_line_opts("boom", SPECIFICATION, "{\"inject_panic\":true}")
            ),
        ),
        // Scrape both formats, probe health, then wind down.
        (
            400,
            "{\"id\":\"m1\",\"cmd\":\"metrics\"}\n\
             {\"id\":\"h\",\"cmd\":\"health\"}\n\
             {\"id\":\"m2\",\"cmd\":\"metrics\",\"format\":\"json\"}\n\
             {\"id\":\"d\",\"cmd\":\"drain\"}\n"
                .to_string(),
        ),
        (100, format!("{}\n", eco_line("too_late", SPECIFICATION))),
    ];
    let responses = run_staged_session(
        &[
            "--workers",
            "2",
            "--queue-capacity",
            "2",
            "--chaos",
            "--log-jsonl",
            journal_path.to_str().expect("utf-8 path"),
            "--trace-out",
            trace_path.to_str().expect("utf-8 path"),
        ],
        &stages,
    );
    let mut by_id = std::collections::HashMap::new();
    for r in &responses {
        let id = r
            .get("id")
            .and_then(JsonValue::as_str)
            .expect("every response carries an id")
            .to_string();
        by_id.insert(id, r);
    }

    // Telemetry must not move a byte of any solved answer.
    for (id, expected) in [
        ("hold_a", &expected_spec),
        ("hold_b", &expected_revised),
        ("queued", &expected_spec),
    ] {
        let r = by_id[id];
        assert_eq!(
            r.get("status").and_then(JsonValue::as_str),
            Some("ok"),
            "{id}: {r:?}"
        );
        assert_eq!(
            &answer_fields(r),
            expected,
            "{id} must match the telemetry-disabled run byte-for-byte"
        );
    }
    assert_eq!(
        by_id["shed_me"].get("status").and_then(JsonValue::as_str),
        Some("overloaded")
    );
    assert_eq!(
        by_id["expired"].get("status").and_then(JsonValue::as_str),
        Some("expired")
    );
    assert_eq!(
        by_id["boom"].get("status").and_then(JsonValue::as_str),
        Some("panic")
    );

    // The Prometheus scrape parses and its serving counters equal the
    // health command's view.
    let health = by_id["h"].get("health").expect("health payload");
    let h = |key: &str| health.get(key).and_then(JsonValue::as_u64).expect(key);
    let m1 = by_id["m1"];
    assert_eq!(
        m1.get("format").and_then(JsonValue::as_str),
        Some("prometheus")
    );
    let exposition = m1
        .get("metrics")
        .and_then(JsonValue::as_str)
        .expect("prometheus metrics payload is text");
    let samples = eco_testutil::prom::check_exposition(exposition)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{exposition}"));
    let sample = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(sample("eco_patchd_shed_total") as u64, h("shed"));
    assert_eq!(sample("eco_patchd_expired_total") as u64, h("expired"));
    assert_eq!(sample("eco_patchd_panicked_total") as u64, h("panicked"));
    assert_eq!(h("shed"), 1);
    assert_eq!(h("expired"), 1);
    assert_eq!(h("panicked"), 1);
    let eco_requests = samples
        .iter()
        .find(|s| {
            s.name == "eco_patchd_requests_total"
                && s.labels == [("cmd".to_string(), "eco".to_string())]
        })
        .expect("per-command request counter");
    // hold_a, hold_b, queued, expired, shed_me, boom (too_late arrives
    // after this scrape).
    assert_eq!(eco_requests.value as u64, 6);

    // The JSON scrape agrees.
    let m2 = by_id["m2"];
    assert_eq!(m2.get("format").and_then(JsonValue::as_str), Some("json"));
    let serving = m2
        .get("metrics")
        .and_then(|m| m.get("serving"))
        .expect("json metrics payload");
    for key in ["shed", "expired", "panicked"] {
        assert_eq!(
            serving.get(key).and_then(JsonValue::as_u64),
            Some(h(key)),
            "{key}"
        );
    }
    assert_eq!(
        m2.get("metrics")
            .and_then(|m| m.get("mode"))
            .and_then(JsonValue::as_str),
        Some("pooled")
    );

    // The journal reconstructs the same counts, event by event.
    let journal_text = std::fs::read_to_string(&journal_path).expect("journal written");
    let journal =
        eco_patch::core::trace::summarize_journal(&journal_text).expect("journal is valid JSONL");
    assert_eq!(journal.shed, 1, "{journal_text}");
    assert_eq!(journal.expired, 1);
    assert_eq!(journal.panicked, 1);
    assert_eq!(journal.drain_refused, 1, "too_late refused while draining");
    assert!(
        journal.admitted >= 4,
        "hold_a, hold_b, queued, expired, boom admit: {journal:?}"
    );
    let ok = journal
        .statuses
        .iter()
        .find(|(s, _)| s == "ok")
        .map(|(_, n)| *n);
    assert_eq!(ok, Some(3), "three solved requests: {journal:?}");
    assert!(
        journal.solve_us > 0 && journal.queue_wait_us > 0,
        "attribution must see real solve and queue time: {journal:?}"
    );

    // The merged trace is one Chrome document where each solved
    // request's lifecycle span carries its request id and its engine
    // spans sit on the same lane inside the span.
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace written");
    let doc = parse_json(&trace_text).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    let request_id_of = |e: &JsonValue| {
        e.get("args")
            .and_then(|a| a.get("request_id"))
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
    };
    for (id, trace_name) in [
        ("hold_a", "request client-lane-a"),
        ("hold_b", "request hold_b"),
        ("queued", "request queued"),
    ] {
        let begin = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("B")
                    && request_id_of(e).as_deref() == Some(id)
            })
            .unwrap_or_else(|| panic!("no lifecycle span for {id}"));
        assert_eq!(
            begin.get("name").and_then(JsonValue::as_str),
            Some(trace_name),
            "client trace ids label the span"
        );
        let lane = begin.get("tid").and_then(JsonValue::as_u64).expect("tid");
        let begin_ts = begin.get("ts").and_then(JsonValue::as_u64).expect("ts");
        let end_ts = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("E")
                    && e.get("tid").and_then(JsonValue::as_u64) == Some(lane)
            })
            .filter_map(|e| e.get("ts").and_then(JsonValue::as_u64))
            .find(|ts| *ts >= begin_ts)
            .unwrap_or_else(|| panic!("lifecycle span for {id} never closes"));
        let engine_spans: Vec<&JsonValue> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("X")
                    && e.get("tid").and_then(JsonValue::as_u64) == Some(lane)
                    && request_id_of(e).as_deref() == Some(id)
                    && e.get("cat").and_then(JsonValue::as_str) != Some("daemon")
            })
            .collect();
        assert!(
            !engine_spans.is_empty(),
            "{id} must contribute engine spans on its lane"
        );
        for span in engine_spans {
            let ts = span.get("ts").and_then(JsonValue::as_u64).expect("ts");
            let dur = span.get("dur").and_then(JsonValue::as_u64).unwrap_or(0);
            assert!(
                ts >= begin_ts && ts + dur <= end_ts,
                "{id}: engine span {span:?} must nest in [{begin_ts}, {end_ts}]"
            );
        }
    }
    // The faults landed on the control lane as instants.
    for name in ["shed", "expired"] {
        assert!(
            events.iter().any(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("i")
                    && e.get("name").and_then(JsonValue::as_str) == Some(name)
            }),
            "missing {name} instant in trace"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An uncleanly killed daemon leaves its socket file behind; a
/// restart on the same path must detect the stale file, rebind, and
/// serve.
#[test]
fn restart_on_the_same_socket_path_replaces_a_stale_socket_file() {
    let dir = std::env::temp_dir().join(format!("eco_patchd_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("patchd.sock");
    let spawn = || {
        Command::new(env!("CARGO_BIN_EXE_eco_patchd"))
            .args(["--socket", path.to_str().expect("utf-8 path")])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn eco_patchd")
    };
    let connect = || {
        for _ in 0..500 {
            if let Ok(s) = std::os::unix::net::UnixStream::connect(&path) {
                return s;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("daemon never bound {}", path.display());
    };

    // First daemon binds, then dies hard — no cleanup, stale file.
    let mut first = spawn();
    drop(connect());
    first.kill().expect("kill -9 the first daemon");
    first.wait().expect("reap");
    assert!(path.exists(), "the socket file must survive the hard kill");

    // Second daemon on the same path must replace the stale socket
    // and serve a full session.
    let second = spawn();
    let mut stream = connect();
    let session = format!(
        "{}\n{{\"id\":\"q\",\"cmd\":\"shutdown\"}}\n",
        eco_line("reborn", SPECIFICATION)
    );
    stream.write_all(session.as_bytes()).expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut replies = String::new();
    std::io::Read::read_to_string(&mut stream, &mut replies).expect("read replies");
    let first_reply = parse_json(replies.lines().next().expect("a response")).expect("valid JSON");
    assert_eq!(
        first_reply.get("id").and_then(JsonValue::as_str),
        Some("reborn")
    );
    assert_eq!(
        first_reply.get("status").and_then(JsonValue::as_str),
        Some("ok")
    );
    let status = second.wait_with_output().expect("second daemon exits");
    assert!(
        status.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
