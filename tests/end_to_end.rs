//! Cross-crate integration tests: the complete contest flow from
//! Verilog text through the engine to a verified patched netlist.

use eco_patch::core::{
    check_equivalence, CecResult, EcoEngine, EcoOptions, EcoProblem, SupportMethod,
};
use eco_patch::netlist::{parse_verilog, Netlist, WeightTable};

// NOTE: the bug is an OR (not an AND) so that the buggy gate does not
// structurally merge with the carry's `and t4 (g2, s1, cin)` during AIG
// conversion — a merged target would also drive `cout` and the ECO
// would be genuinely unsolvable.
const IMPLEMENTATION: &str = "
module alu_slice (a, b, cin, sel, y, cout);
  input a, b, cin, sel;
  output y, cout;
  wire s1, s2, g1, g2, mux;
  // eco_target s2
  xor t1 (s1, a, b);
  or  t2 (s2, s1, cin);      // BUG: should be xor -> full-adder sum
  and t3 (g1, a, b);
  and t4 (g2, s1, cin);
  or  t5 (cout, g1, g2);
  not t6 (mux, sel);
  and t7 (y, s2, mux);
endmodule
";

const SPECIFICATION: &str = "
module alu_slice (a, b, cin, sel, y, cout);
  input a, b, cin, sel;
  output y, cout;
  wire s1, s2, g1, g2, mux;
  xor t1 (s1, a, b);
  xor t2 (s2, s1, cin);
  and t3 (g1, a, b);
  and t4 (g2, s1, cin);
  or  t5 (cout, g1, g2);
  not t6 (mux, sel);
  and t7 (y, s2, mux);
endmodule
";

fn problem_from_sources() -> (EcoProblem, Vec<String>) {
    let parsed_impl = parse_verilog(IMPLEMENTATION).expect("impl parses");
    let parsed_spec = parse_verilog(SPECIFICATION).expect("spec parses");
    let mut weights = WeightTable::new();
    weights.set("s1", 2);
    weights.set("cin", 3);
    weights.set("a", 20);
    weights.set("b", 20);
    let names: Vec<&str> = parsed_impl.targets.iter().map(String::as_str).collect();
    let problem = EcoProblem::from_netlists(
        &parsed_impl.netlist,
        &parsed_spec.netlist,
        &names,
        &weights,
        50,
    )
    .expect("valid problem");
    (problem, parsed_impl.targets)
}

#[test]
fn contest_flow_fixes_the_alu_slice() {
    let (problem, targets) = problem_from_sources();
    assert_eq!(targets, vec!["s2"]);
    let engine = EcoEngine::new(EcoOptions::default());
    let outcome = engine.solve(&problem.snapshot()).expect("engine runs");
    assert!(outcome.verified);
    // The cheap patch is xor(s1, cin): support cost 2 + 3 = 5, far below
    // rebuilding from the inputs (20 + 20 + 3).
    assert!(
        outcome.total_cost <= 5,
        "cost {} too high",
        outcome.total_cost
    );
}

#[test]
fn every_method_produces_an_equivalent_netlist() {
    let (problem, _) = problem_from_sources();
    for method in [
        SupportMethod::AnalyzeFinal,
        SupportMethod::MinimizeAssumptions,
        SupportMethod::SatPrune,
    ] {
        let engine = EcoEngine::new(
            EcoOptions::builder()
                .method(method)
                .build()
                .expect("valid options"),
        );
        let outcome = engine.solve(&problem.snapshot()).expect("engine runs");
        assert!(outcome.verified, "{method:?}");
        // And the result survives a netlist round trip.
        let patched_netlist = Netlist::from_aig("patched", &outcome.patched_implementation);
        let reparsed = parse_verilog(&patched_netlist.to_verilog())
            .expect("emitted Verilog parses")
            .netlist;
        let back = reparsed.to_aig().expect("valid netlist").aig;
        assert_eq!(
            check_equivalence(&back, &problem.specification, None),
            CecResult::Equivalent,
            "{method:?}: netlist round trip must stay equivalent"
        );
    }
}

#[test]
fn method_cost_ordering_holds() {
    // minimize_assumptions never costs more than the analyze_final
    // baseline on this instance, and SAT_prune never more than
    // minimize_assumptions (single target = exact).
    let (problem, _) = problem_from_sources();
    let run = |method| {
        EcoEngine::new(
            EcoOptions::builder()
                .method(method)
                .build()
                .expect("valid options"),
        )
        .solve(&problem.snapshot())
        .expect("engine runs")
        .total_cost
    };
    let baseline = run(SupportMethod::AnalyzeFinal);
    let minimized = run(SupportMethod::MinimizeAssumptions);
    let pruned = run(SupportMethod::SatPrune);
    assert!(
        minimized <= baseline,
        "minimized {minimized} > baseline {baseline}"
    );
    assert!(
        pruned <= minimized,
        "pruned {pruned} > minimized {minimized}"
    );
}
