//! Property tests for the fraig SAT-sweeping front end: random
//! benchgen circuits are swept with [`fraig_reduce`] and checked
//! node-for-node equivalent against the unswept original — by
//! exhaustive simulation up to [`MAX_EXHAUSTIVE_INPUTS`] inputs and by
//! miter-SAT above — across seeds, budgets, and fault-injection chaos.
//! A tripped sweep must degrade to the unswept circuit, never to a
//! wrong answer.

use eco_patch::aig::{Aig, MAX_EXHAUSTIVE_INPUTS};
use eco_patch::benchgen::{random_aig, CircuitSpec};
use eco_patch::core::{
    check_equivalence, fraig_reduce, CecResult, FaultPlan, FraigOptions, FraigOutcome,
    GovernorLimits, ResourceGovernor,
};
use eco_testutil::{cases, Rng};

fn random_spec(rng: &mut Rng) -> CircuitSpec {
    CircuitSpec {
        num_inputs: rng.range(3, 10) as usize,
        num_outputs: rng.range(1, 5) as usize,
        num_gates: rng.range(20, 120) as usize,
        seed: rng.next_u64(),
    }
}

/// Pairs every surviving node of `original` with its mapped literal:
/// two probe AIGs whose output lists line up position by position.
fn probe_pair(original: &Aig, out: &FraigOutcome, max_probes: usize) -> (Aig, Aig) {
    let mut po = original.clone();
    let mut pn = out.aig.clone();
    let mut probes = 0;
    for id in original.iter_nodes() {
        let Some(mapped) = out.node_map[id.index()] else {
            continue;
        };
        po.add_output(id.lit());
        pn.add_output(mapped);
        probes += 1;
        if probes >= max_probes {
            break;
        }
    }
    (po, pn)
}

/// Node-for-node equivalence by exhaustive simulation (≤ 2^n rows).
fn assert_nodes_equivalent_exhaustive(original: &Aig, out: &FraigOutcome, label: &str) {
    let (po, pn) = probe_pair(original, out, usize::MAX);
    let to = po.simulate_all_inputs().expect("small input count");
    let tn = pn.simulate_all_inputs().expect("same input count");
    assert_eq!(to, tn, "{label}: some node changed function under sweeping");
}

#[test]
fn swept_random_aigs_are_node_for_node_equivalent() {
    cases(24, |case, rng| {
        let spec = random_spec(rng);
        let original = random_aig(&spec);
        let opts = FraigOptions {
            pattern_words: rng.range(1, 4) as usize,
            seed: rng.next_u64(),
            max_rounds: rng.range(1, 5) as usize,
            per_call_conflicts: Some(100_000),
        };
        let out = fraig_reduce(&original, &opts, None);
        assert!(
            !out.degraded,
            "case {case}: an ungoverned generous budget must not trip"
        );
        assert!(
            out.aig.num_nodes() <= original.num_nodes(),
            "case {case}: sweeping must never grow the circuit"
        );
        assert_nodes_equivalent_exhaustive(&original, &out, &format!("case {case}"));
    });
}

#[test]
fn sweeps_above_the_exhaustive_limit_are_verified_by_miter_sat() {
    // 22 inputs puts exhaustive simulation out of reach, so the check
    // runs through the same miter-SAT path production CEC uses.
    for seed in [7u64, 1881, 424242] {
        let spec = CircuitSpec {
            num_inputs: MAX_EXHAUSTIVE_INPUTS + 2,
            num_outputs: 4,
            num_gates: 160,
            seed,
        };
        let original = random_aig(&spec);
        assert!(original.simulate_all_inputs().is_err());
        let out = fraig_reduce(&original, &FraigOptions::default(), None);
        assert!(!out.degraded, "seed {seed}");
        // Outputs first, then a bounded sample of internal probes so
        // the miter stays small enough for an un-budgeted proof.
        assert_eq!(
            check_equivalence(&original, &out.aig, None),
            CecResult::Equivalent,
            "seed {seed}: swept outputs must match"
        );
        let (po, pn) = probe_pair(&original, &out, 40);
        assert_eq!(
            check_equivalence(&po, &pn, None),
            CecResult::Equivalent,
            "seed {seed}: sampled internal nodes must match"
        );
    }
}

fn random_fault_plan(rng: &mut Rng) -> Option<FaultPlan> {
    Some(match rng.below(5) {
        0 => return None,
        1 => FaultPlan::EveryNth(rng.below(4)),
        2 => FaultPlan::AtCalls((0..rng.range(1, 5)).map(|_| rng.range(1, 20)).collect()),
        3 => FaultPlan::Seeded {
            seed: rng.next_u64(),
            one_in: rng.range(1, 5),
        },
        _ => FaultPlan::CancelAt(rng.range(1, 12)),
    })
}

#[test]
fn chaos_degrades_the_sweep_but_never_corrupts_it() {
    cases(24, |case, rng| {
        let spec = random_spec(rng);
        let original = random_aig(&spec);
        let governor = ResourceGovernor::new(GovernorLimits {
            global_conflicts: if rng.bool() {
                Some(rng.below(200))
            } else {
                None
            },
            fault_plan: random_fault_plan(rng),
            ..GovernorLimits::default()
        });
        let opts = FraigOptions {
            per_call_conflicts: Some(rng.below(50)),
            seed: rng.next_u64(),
            ..FraigOptions::default()
        };
        let out = fraig_reduce(&original, &opts, Some(&governor));
        if out.degraded {
            // A tripped sweep falls back to the unswept circuit.
            assert_eq!(
                out.aig.num_nodes(),
                original.num_nodes(),
                "case {case}: degraded sweeps must be the identity"
            );
            assert_eq!(out.stats.merges, 0, "case {case}");
        }
        // Tripped or not, the function is untouched.
        assert_nodes_equivalent_exhaustive(&original, &out, &format!("case {case}"));
    });
}

#[test]
fn sweeping_is_deterministic_for_a_fixed_seed() {
    cases(12, |case, rng| {
        let spec = random_spec(rng);
        let original = random_aig(&spec);
        let opts = FraigOptions {
            seed: rng.next_u64(),
            ..FraigOptions::default()
        };
        let first = fraig_reduce(&original, &opts, None);
        let second = fraig_reduce(&original, &opts, None);
        assert_eq!(first.stats, second.stats, "case {case}");
        assert_eq!(
            first.aig.to_aag(),
            second.aig.to_aag(),
            "case {case}: swept AIG must be byte-identical across runs"
        );
        assert_eq!(first.node_map, second.node_map, "case {case}");
    });
}
