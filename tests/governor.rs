//! Fault-injection integration tests: drive every edge of the
//! per-target degradation ladder deterministically, and check the
//! governor's anytime guarantees (deadline, cancellation, global
//! budget pool).

use eco_patch::aig::Aig;
use eco_patch::core::{
    check_equivalence, CecResult, EcoEngine, EcoEvent, EcoObserver, EcoOptions, EcoProblem,
    FaultPlan, GovernorLimits, LadderRung, PatchKind, ResourceGovernor, SatCallKind,
    TargetDisposition, TripReason,
};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn and_vs_or_problem() -> EcoProblem {
    let mut im = Aig::new();
    let (a, b) = (im.add_input(), im.add_input());
    let t = im.and(a, b);
    im.add_output(t);
    let t_node = t.node();
    let mut sp = Aig::new();
    let (a, b) = (sp.add_input(), sp.add_input());
    let o = sp.or(a, b);
    sp.add_output(o);
    EcoProblem::with_unit_weights(im, sp, vec![t_node]).expect("valid")
}

fn multi_target_problem() -> EcoProblem {
    // impl y = (a&b) & (b&c); spec y = a ^ c; both ANDs are targets.
    let mut im = Aig::new();
    let (a, b, c) = (im.add_input(), im.add_input(), im.add_input());
    let t1 = im.and(a, b);
    let t2 = im.and(b, c);
    let y = im.and(t1, t2);
    im.add_output(y);
    let mut sp = Aig::new();
    let (a, _b, c) = (sp.add_input(), sp.add_input(), sp.add_input());
    let y = sp.xor(a, c);
    sp.add_output(y);
    EcoProblem::with_unit_weights(im, sp, vec![t1.node(), t2.node()]).expect("valid")
}

/// Records every event for post-run inspection.
#[derive(Default)]
struct Recorder {
    events: Vec<EcoEvent>,
}

impl EcoObserver for Recorder {
    fn on_event(&mut self, event: &EcoEvent) {
        self.events.push(event.clone());
    }
}

fn ladder_rungs(events: &[EcoEvent]) -> Vec<(usize, LadderRung)> {
    events
        .iter()
        .filter_map(|e| match e {
            EcoEvent::LadderStep { target_index, rung } => Some((*target_index, *rung)),
            _ => None,
        })
        .collect()
}

fn run_recorded(
    options: EcoOptions,
    problem: &EcoProblem,
) -> (eco_patch::core::EcoOutcome, Vec<EcoEvent>) {
    let recorder = Arc::new(Mutex::new(Recorder::default()));
    let engine = EcoEngine::new(options)
        .with_shared_observer(recorder.clone() as Arc<Mutex<dyn EcoObserver + Send>>);
    let outcome = engine.solve(&problem.snapshot()).expect("anytime outcome");
    let events = std::mem::take(&mut recorder.lock().expect("no poison").events);
    (outcome, events)
}

/// Ladder edge: full attempt -> reduced retry. A single injected fault
/// at the first patch-phase SAT call fails the full attempt; the retry
/// runs fault-free and still patches, so the target lands `Degraded`
/// on the SAT path and the result verifies.
#[test]
fn fault_on_full_attempt_degrades_to_retry() {
    let p = and_vs_or_problem();
    // Locate the first patch-phase call: it follows the sufficiency
    // check's QBF calls, whose count a fault-free metered run reveals.
    let baseline = EcoEngine::new(EcoOptions::builder().build().expect("valid options"))
        .with_metrics()
        .solve(&p.snapshot())
        .expect("baseline");
    let qbf_calls =
        baseline.metrics.expect("metrics").sat_calls.by_kind[SatCallKind::Qbf.index()].calls;
    let options = EcoOptions::builder()
        .fault_plan(Some(FaultPlan::AtCalls(vec![qbf_calls + 1])))
        .build()
        .expect("valid options");
    let (outcome, events) = run_recorded(options, &p);
    assert_eq!(outcome.fault_injections, 1);
    assert_eq!(outcome.reports.len(), 1);
    assert_eq!(outcome.reports[0].kind, PatchKind::Sat);
    assert_eq!(outcome.reports[0].disposition, TargetDisposition::Degraded);
    assert!(outcome.verified, "retry patch must still verify");
    assert_eq!(ladder_rungs(&events), vec![(0, LadderRung::DegradedRetry)]);
    assert!(
        events.iter().any(|e| matches!(
            e,
            EcoEvent::GovernorTripped {
                reason: TripReason::FaultInjected
            }
        )),
        "each injected fault must be announced"
    );
}

/// Ladder edge: retry -> structural. Failing every SAT call exhausts
/// both SAT rungs and the CEGAR_min queries; the SAT-free structural
/// cofactor patch still lands, keeping the run alive.
#[test]
fn all_faults_degrade_to_structural() {
    let p = and_vs_or_problem();
    let options = EcoOptions::builder()
        .fault_plan(Some(FaultPlan::EveryNth(1)))
        .build()
        .expect("valid options");
    let (outcome, events) = run_recorded(options, &p);
    assert_eq!(outcome.reports.len(), 1);
    // CEGAR_min may shrug off faulted (Unknown) equivalence queries and
    // still improve the patch; either structural kind is acceptable.
    assert!(
        matches!(
            outcome.reports[0].kind,
            PatchKind::Structural | PatchKind::StructuralCegarMin
        ),
        "got {:?}",
        outcome.reports[0].kind
    );
    assert_eq!(outcome.reports[0].disposition, TargetDisposition::Degraded);
    assert!(outcome.fault_injections > 0);
    // Faults are per-call, not sticky: no lasting governor trip.
    assert_eq!(outcome.governor_trip, None);
    let rungs = ladder_rungs(&events);
    assert_eq!(
        rungs,
        vec![(0, LadderRung::DegradedRetry), (0, LadderRung::Structural)],
        "must walk retry then structural, never skip"
    );
    // The final CEC may be discharged structurally (no SAT call, hence
    // no fault); confirm correctness out-of-band either way.
    assert_eq!(
        check_equivalence(&outcome.patched_implementation, &p.specification, None),
        CecResult::Equivalent
    );
}

/// Ladder edge: structural -> skipped. A sticky cancellation before any
/// work hard-stops every rung; all targets are skipped, the original
/// functions are kept, and the run still returns an outcome.
#[test]
fn cancellation_skips_every_target() {
    let p = multi_target_problem();
    let options = EcoOptions::builder()
        .fault_plan(Some(FaultPlan::CancelAt(1)))
        .build()
        .expect("valid options");
    let (outcome, events) = run_recorded(options, &p);
    assert_eq!(outcome.governor_trip, Some(TripReason::Cancelled));
    assert_eq!(outcome.reports.len(), 2);
    for r in &outcome.reports {
        assert_eq!(r.kind, PatchKind::Skipped);
        assert!(
            matches!(&r.disposition, TargetDisposition::Skipped { reason } if reason == "cancelled"),
            "got {:?}",
            r.disposition
        );
    }
    assert!(!outcome.verified);
    assert_eq!(outcome.total_gates, 0, "no patch logic was added");
    let rungs = ladder_rungs(&events);
    assert_eq!(
        rungs,
        vec![(0, LadderRung::Skipped), (1, LadderRung::Skipped)]
    );
    assert!(events.iter().any(|e| matches!(
        e,
        EcoEvent::GovernorTripped {
            reason: TripReason::Cancelled
        }
    )));
}

/// An already-expired deadline must yield an anytime outcome promptly:
/// per-target `Skipped` dispositions, a `Deadline` trip on the outcome,
/// and a wall-clock bound far below what the un-governed run could use.
#[test]
fn expired_deadline_returns_anytime_outcome() {
    let p = multi_target_problem();
    let options = EcoOptions::builder()
        .timeout(Some(Duration::from_nanos(1)))
        .build()
        .expect("valid options");
    let t0 = Instant::now();
    let outcome = EcoEngine::new(options)
        .solve(&p.snapshot())
        .expect("anytime outcome");
    let elapsed = t0.elapsed();
    assert_eq!(outcome.governor_trip, Some(TripReason::Deadline));
    assert_eq!(outcome.reports.len(), 2);
    for r in &outcome.reports {
        assert!(
            matches!(&r.disposition, TargetDisposition::Skipped { reason } if reason == "deadline"),
            "got {:?}",
            r.disposition
        );
    }
    assert!(!outcome.verified);
    // Generous CI margin; the run does no SAT search at all.
    assert!(
        elapsed < Duration::from_secs(5),
        "anytime return took {elapsed:?}"
    );
}

/// A drained global conflict pool is a soft trip: SAT rungs fail but
/// the SAT-free structural patch still lands on every target.
#[test]
fn exhausted_global_pool_degrades_but_patches() {
    let p = multi_target_problem();
    let options = EcoOptions::builder()
        .global_conflicts(Some(0))
        .cegar_min(false)
        .build()
        .expect("valid options");
    let outcome = EcoEngine::new(options)
        .solve(&p.snapshot())
        .expect("anytime outcome");
    assert_eq!(outcome.governor_trip, Some(TripReason::GlobalBudget));
    assert_eq!(outcome.reports.len(), 2);
    for r in &outcome.reports {
        assert_eq!(r.disposition, TargetDisposition::Degraded, "got {:?}", r);
    }
    assert_eq!(
        check_equivalence(&outcome.patched_implementation, &p.specification, None),
        CecResult::Equivalent
    );
}

/// An externally-owned governor can be cancelled before the run; the
/// engine honors it over options-derived limits.
#[test]
fn external_governor_cancellation_is_honored() {
    let p = and_vs_or_problem();
    let governor = ResourceGovernor::new(GovernorLimits::default());
    governor.cancel();
    let outcome = EcoEngine::new(EcoOptions::builder().build().expect("valid options"))
        .with_governor(governor.clone())
        .solve(&p.snapshot())
        .expect("anytime outcome");
    assert_eq!(outcome.governor_trip, Some(TripReason::Cancelled));
    assert!(matches!(
        outcome.reports[0].disposition,
        TargetDisposition::Skipped { .. }
    ));
    // The sufficiency probe's solve attempt is still counted, but it
    // must return `Unknown` before any search; nothing else may run.
    assert!(governor.sat_calls() <= 1, "got {}", governor.sat_calls());
}

/// With the fallback ladder disabled, a deadline surfaces as the typed
/// `DeadlineExceeded` error rather than a generic budget failure.
#[test]
fn no_fallback_mode_reports_deadline_error() {
    let p = and_vs_or_problem();
    let options = EcoOptions::builder()
        .timeout(Some(Duration::from_nanos(1)))
        .structural_fallback(false)
        .build()
        .expect("valid options");
    let err = EcoEngine::new(options).solve(&p.snapshot()).unwrap_err();
    assert!(
        matches!(err, eco_patch::core::EcoError::DeadlineExceeded { .. }),
        "got {err:?}"
    );
    assert!(err.is_resource_exhausted());
}

/// Seeded fault schedules are reproducible: the same seed yields the
/// same dispositions and fault count, a different seed may not.
#[test]
fn seeded_fault_schedule_is_reproducible() {
    let p = multi_target_problem();
    let run = |seed: u64| {
        let options = EcoOptions::builder()
            .fault_plan(Some(FaultPlan::Seeded { seed, one_in: 3 }))
            .build()
            .expect("valid options");
        let out = EcoEngine::new(options)
            .solve(&p.snapshot())
            .expect("anytime outcome");
        (
            out.fault_injections,
            out.reports
                .iter()
                .map(|r| r.disposition.clone())
                .collect::<Vec<_>>(),
        )
    };
    let (faults_a, dispositions_a) = run(42);
    let (faults_b, dispositions_b) = run(42);
    assert_eq!(faults_a, faults_b);
    assert_eq!(dispositions_a, dispositions_b);
}
