//! Robustness property test: under random tiny budgets, random
//! fault-injection schedules, random worker counts, and random small
//! problems, the engine never panics — every run returns either an
//! anytime outcome with a disposition per target or a typed
//! `EcoError`, and the event stream keeps its LIFO span discipline.

use eco_patch::benchgen::{inject_eco, random_aig, CircuitSpec, InjectSpec};
use eco_patch::core::trace::{check_span_integrity, JsonlTraceObserver};
use eco_patch::core::{
    EcoEngine, EcoObserver, EcoOptions, EcoProblem, FaultPlan, SupportMethod, TargetDisposition,
};
use eco_testutil::{cases, Rng};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

fn random_fault_plan(rng: &mut Rng) -> Option<FaultPlan> {
    Some(match rng.below(6) {
        0 => return None,
        1 => FaultPlan::EveryNth(rng.below(5)),
        2 => FaultPlan::AtCalls((0..rng.range(1, 5)).map(|_| rng.range(1, 30)).collect()),
        3 => FaultPlan::Seeded {
            seed: rng.next_u64(),
            one_in: rng.range(1, 6),
        },
        4 => FaultPlan::CancelAt(rng.range(1, 20)),
        _ => FaultPlan::EveryNth(1),
    })
}

fn random_options(rng: &mut Rng) -> EcoOptions {
    let method = match rng.below(3) {
        0 => SupportMethod::AnalyzeFinal,
        1 => SupportMethod::MinimizeAssumptions,
        _ => SupportMethod::SatPrune,
    };
    EcoOptions::builder()
        .method(method)
        .per_call_conflicts(if rng.bool() {
            Some(rng.below(50))
        } else {
            None
        })
        .global_conflicts(if rng.bool() {
            Some(rng.below(200))
        } else {
            None
        })
        .global_propagations(if rng.below(4) == 0 {
            Some(rng.below(2000))
        } else {
            None
        })
        .timeout(if rng.below(4) == 0 {
            // Near-expired or expiring mid-run (the builder rejects a
            // literal zero). Wall-clock dependent, so assertions below
            // stay timing-agnostic.
            Some(Duration::from_millis(rng.below(3)).max(Duration::from_nanos(1)))
        } else {
            None
        })
        .fault_plan(random_fault_plan(rng))
        .cegar_min(rng.bool())
        .structural_fallback(rng.bool())
        .degraded_retry(rng.bool())
        .verify(rng.bool())
        .jobs(rng.range(1, 5) as usize)
        .build()
        .expect("valid options")
}

/// Builds a random small multi-target problem, or `None` when the
/// random circuit is too small to carry the requested targets.
fn random_problem(rng: &mut Rng) -> Option<(EcoProblem, usize)> {
    let spec = CircuitSpec {
        num_inputs: rng.range(3, 9) as usize,
        num_outputs: rng.range(1, 4) as usize,
        num_gates: rng.range(10, 60) as usize,
        seed: rng.below(1000),
    };
    let num_targets = rng.range(1, 4) as usize;
    let implementation = random_aig(&spec);
    let injected = inject_eco(
        &implementation,
        &InjectSpec {
            num_targets,
            seed: spec.seed,
        },
    )?;
    let expected_targets = injected.targets.len();
    let problem =
        EcoProblem::with_unit_weights(implementation, injected.specification, injected.targets)
            .expect("valid problem");
    Some((problem, expected_targets))
}

#[test]
fn engine_is_total_under_chaos() {
    cases(48, |case, rng| {
        let Some((problem, expected_targets)) = random_problem(rng) else {
            return; // circuit too small for that many targets
        };
        let options = random_options(rng);
        // The property: `run` is total. No panic, and the result is
        // either an anytime outcome covering every target or a typed
        // error that renders.
        match EcoEngine::new(options).solve(&problem.snapshot()) {
            Ok(outcome) => {
                assert_eq!(
                    outcome.reports.len(),
                    expected_targets,
                    "case {case}: every target needs a disposition"
                );
                for report in &outcome.reports {
                    match &report.disposition {
                        TargetDisposition::Patched | TargetDisposition::Degraded => {}
                        TargetDisposition::Skipped { reason } => {
                            assert!(!reason.is_empty(), "case {case}: skip needs a reason");
                        }
                        other => panic!("case {case}: unexpected disposition {other:?}"),
                    }
                }
                if outcome.verified {
                    // A verified claim must be backed by real patches.
                    assert!(
                        outcome.reports.iter().all(|r| r.disposition.is_patched()
                            || r.disposition == TargetDisposition::Degraded),
                        "case {case}: verified outcome cannot contain skips"
                    );
                }
            }
            Err(e) => {
                // Typed and displayable is all we ask of the error path.
                assert!(!e.to_string().is_empty(), "case {case}");
            }
        }
    });
}

#[test]
fn parallel_chaos_keeps_trace_span_discipline() {
    // Same chaos as above, but with a JSONL trace attached and the
    // worker count forced above one: whatever the governor and fault
    // plan do to the parallel backend, the replayed event stream must
    // stay a valid LIFO span tree (aborted runs may leave spans open,
    // but never close them out of order).
    cases(32, |case, rng| {
        let Some((problem, expected_targets)) = random_problem(rng) else {
            return;
        };
        let mut options = random_options(rng);
        options.jobs = rng.range(2, 5) as usize;
        let trace = Arc::new(Mutex::new(JsonlTraceObserver::new(Vec::new())));
        let engine = EcoEngine::new(options)
            .with_shared_observer(trace.clone() as Arc<Mutex<dyn EcoObserver + Send>>);
        let result = engine.solve(&problem.snapshot());
        drop(engine);
        let writer = Arc::try_unwrap(trace)
            .unwrap_or_else(|_| panic!("case {case}: engine still holds the trace observer"))
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .finish()
            .expect("in-memory trace write");
        let text = String::from_utf8(writer).expect("traces are UTF-8");
        check_span_integrity(&text).unwrap_or_else(|e| {
            panic!("case {case}: span integrity violated: {e}\ntrace:\n{text}")
        });
        if let Ok(outcome) = result {
            assert_eq!(
                outcome.reports.len(),
                expected_targets,
                "case {case}: anytime outcome must cover every target"
            );
        }
    });
}
