//! Observer-layer integration tests: phase nesting, SAT-call
//! attribution reconciling with the per-target reports, and the
//! stability of the `RunMetrics` JSON schema.

use eco_patch::aig::Aig;
use eco_patch::core::json::{parse_json, JsonValue};
use eco_patch::core::{
    BudgetMetrics, CacheCounters, ClassesCounters, EcoEngine, EcoEvent, EcoObserver, EcoOptions,
    EcoProblem, KindMetrics, PatchKind, Phase, PhaseMetrics, RunMetrics, SatCallKind,
    SatCallMetrics, ServingCounters, SupportMethod, SweepCounters, TargetMetrics, WorkerMetrics,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Records every event for post-run inspection.
#[derive(Default)]
struct Recorder {
    events: Vec<EcoEvent>,
}

impl EcoObserver for Recorder {
    fn on_event(&mut self, event: &EcoEvent) {
        self.events.push(event.clone());
    }
}

fn and_vs_or_problem() -> EcoProblem {
    let mut im = Aig::new();
    let (a, b) = (im.add_input(), im.add_input());
    let t = im.and(a, b);
    im.add_output(t);
    let t_node = t.node();
    let mut sp = Aig::new();
    let (a, b) = (sp.add_input(), sp.add_input());
    let o = sp.or(a, b);
    sp.add_output(o);
    EcoProblem::with_unit_weights(im, sp, vec![t_node]).expect("valid")
}

fn multi_target_problem() -> EcoProblem {
    // impl y = (a&b) & (b&c); spec y = a ^ c; both ANDs are targets.
    let mut im = Aig::new();
    let (a, b, c) = (im.add_input(), im.add_input(), im.add_input());
    let t1 = im.and(a, b);
    let t2 = im.and(b, c);
    let y = im.and(t1, t2);
    im.add_output(y);
    let mut sp = Aig::new();
    let (a, _b, c) = (sp.add_input(), sp.add_input(), sp.add_input());
    let y = sp.xor(a, c);
    sp.add_output(y);
    EcoProblem::with_unit_weights(im, sp, vec![t1.node(), t2.node()]).expect("valid")
}

fn record_run(
    options: EcoOptions,
    problem: &EcoProblem,
) -> (eco_patch::core::EcoOutcome, Vec<EcoEvent>) {
    let recorder = Arc::new(Mutex::new(Recorder::default()));
    let engine = EcoEngine::new(options)
        .with_shared_observer(recorder.clone() as Arc<Mutex<dyn EcoObserver + Send>>);
    let outcome = engine.solve(&problem.snapshot()).expect("engine run");
    let events = std::mem::take(&mut recorder.lock().expect("no poison").events);
    (outcome, events)
}

#[test]
fn phases_nest_and_cover_the_whole_run() {
    let (_, events) = record_run(
        EcoOptions::builder().build().expect("valid options"),
        &multi_target_problem(),
    );
    assert!(
        matches!(
            events.first(),
            Some(EcoEvent::RunStarted { num_targets: 2, .. })
        ),
        "first event must be RunStarted"
    );
    assert!(
        matches!(events.last(), Some(EcoEvent::RunFinished { .. })),
        "last event must be RunFinished"
    );

    // Exactly one Started/Finished pair per phase, in flow order, with
    // no overlap, and every inner event inside some phase.
    let mut open: Option<Phase> = None;
    let mut finished: Vec<Phase> = Vec::new();
    let mut open_target: Option<usize> = None;
    for event in &events {
        match event {
            EcoEvent::RunStarted { .. } | EcoEvent::RunFinished { .. } => {
                assert!(open.is_none(), "run boundary inside phase {open:?}");
            }
            EcoEvent::PhaseStarted { phase } => {
                assert!(open.is_none(), "phase {phase:?} started inside {open:?}");
                open = Some(*phase);
            }
            EcoEvent::PhaseFinished { phase, .. } => {
                assert_eq!(open, Some(*phase), "finish must match the open phase");
                assert!(
                    open_target.is_none(),
                    "phase closed with target {open_target:?} open"
                );
                finished.push(*phase);
                open = None;
            }
            EcoEvent::TargetStarted { target_index, .. } => {
                assert_eq!(open, Some(Phase::PatchGeneration));
                assert!(open_target.is_none());
                open_target = Some(*target_index);
            }
            EcoEvent::TargetFinished { target_index, .. } => {
                assert_eq!(open_target, Some(*target_index));
                open_target = None;
            }
            _ => {
                assert!(open.is_some(), "event {event:?} emitted outside any phase");
            }
        }
    }
    assert_eq!(
        finished,
        Phase::ALL.to_vec(),
        "all phases complete, in flow order"
    );
}

/// Sums the `SatCall` events attributed to each target.
fn attributed_calls(events: &[EcoEvent]) -> HashMap<usize, u64> {
    let mut by_target: HashMap<usize, u64> = HashMap::new();
    for event in events {
        if let EcoEvent::SatCall {
            target_index: Some(ti),
            ..
        } = event
        {
            *by_target.entry(*ti).or_default() += 1;
        }
    }
    by_target
}

#[test]
fn attributed_sat_calls_match_reports_for_every_method() {
    for method in [
        SupportMethod::AnalyzeFinal,
        SupportMethod::MinimizeAssumptions,
        SupportMethod::SatPrune,
    ] {
        for problem in [and_vs_or_problem(), multi_target_problem()] {
            let (outcome, events) = record_run(
                EcoOptions::builder()
                    .method(method)
                    .build()
                    .expect("valid options"),
                &problem,
            );
            let by_target = attributed_calls(&events);
            for report in &outcome.reports {
                if report.kind == PatchKind::TrivialDead {
                    continue;
                }
                assert_eq!(
                    by_target.get(&report.target_index).copied().unwrap_or(0),
                    report.sat_calls,
                    "{method:?}: events for target {} must match its report",
                    report.target_index
                );
            }
        }
    }
}

#[test]
fn attributed_sat_calls_match_reports_on_structural_fallback() {
    let options = EcoOptions::builder()
        .per_call_conflicts(Some(0)) // force the fallback
        .cegar_min(true)
        .verify(false)
        .build()
        .expect("valid options");
    let (outcome, events) = record_run(options, &and_vs_or_problem());
    assert_eq!(outcome.reports[0].kind, PatchKind::StructuralCegarMin);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, EcoEvent::StructuralFallback { target_index: 0 })),
        "fallback must be announced"
    );
    let by_target = attributed_calls(&events);
    assert_eq!(
        by_target.get(&0).copied().unwrap_or(0),
        outcome.reports[0].sat_calls,
        "carried calls from the failed SAT attempt stay attributed"
    );
}

#[test]
fn metrics_observer_reconciles_with_reports() {
    let engine =
        EcoEngine::new(EcoOptions::builder().build().expect("valid options")).with_metrics();
    let outcome = engine
        .solve(&multi_target_problem().snapshot())
        .expect("engine run");
    let metrics = outcome.metrics.as_ref().expect("with_metrics attached");
    assert_eq!(metrics.num_targets, 2);
    assert!(!metrics.targets.is_empty());
    for target in &metrics.targets {
        assert_eq!(
            target.observed_sat_calls, target.sat_calls,
            "target {}: event count must equal the reported count",
            target.target_index
        );
        let report = outcome
            .reports
            .iter()
            .find(|r| r.target_index == target.target_index)
            .expect("report exists");
        assert_eq!(target.sat_calls, report.sat_calls);
    }
    let total_by_kind: u64 = metrics.sat_calls.by_kind.iter().map(|k| k.calls).sum();
    assert_eq!(total_by_kind, metrics.sat_calls.total);
    let histogram_total: u64 = metrics.sat_calls.conflict_histogram.iter().sum();
    assert_eq!(histogram_total, metrics.sat_calls.total);
    let latency_total: u64 = metrics.sat_calls.latency_histogram.iter().sum();
    assert_eq!(latency_total, metrics.sat_calls.total);
    let time_by_kind: Duration = metrics.sat_calls.by_kind.iter().map(|k| k.time).sum();
    assert_eq!(time_by_kind, metrics.sat_calls.time);
    assert_eq!(metrics.phases.len(), Phase::ALL.len());
    // The final CEC may be discharged structurally (no SAT call), but the
    // patch-generation calls themselves must be visible.
    assert!(metrics.sat_calls.total > 0);
    assert!(metrics.sat_calls.by_kind[SatCallKind::Support.index()].calls >= 1);
    assert!(
        metrics.sat_calls.time > Duration::ZERO,
        "observed runs must capture solver wall time"
    );
}

fn disjoint_targets_problem() -> EcoProblem {
    // Two targets with disjoint output cones, so the engine can batch
    // them as independent single-target subproblems.
    let mut im = Aig::new();
    let (a, b, c, d) = (
        im.add_input(),
        im.add_input(),
        im.add_input(),
        im.add_input(),
    );
    let t1 = im.and(a, b);
    let t2 = im.and(c, d);
    im.add_output(t1);
    im.add_output(t2);
    let mut sp = Aig::new();
    let (a, b, c, d) = (
        sp.add_input(),
        sp.add_input(),
        sp.add_input(),
        sp.add_input(),
    );
    let o1 = sp.or(a, b);
    let o2 = sp.or(c, d);
    sp.add_output(o1);
    sp.add_output(o2);
    EcoProblem::with_unit_weights(im, sp, vec![t1.node(), t2.node()]).expect("valid")
}

#[test]
fn run_metrics_totals_are_jobs_invariant() {
    for problem in [multi_target_problem(), disjoint_targets_problem()] {
        let run = |jobs: usize| {
            let engine = EcoEngine::new(
                EcoOptions::builder()
                    .jobs(jobs)
                    .build()
                    .expect("valid options"),
            )
            .with_metrics();
            let outcome = engine.solve(&problem.snapshot()).expect("engine run");
            outcome.metrics.expect("with_metrics attached")
        };
        let base = run(1);
        for jobs in [2usize, 4] {
            let m = run(jobs);
            // The structural totals must not move with the worker count;
            // only wall-clock columns (elapsed, sat_time, latency
            // histograms) and worker attribution may.
            assert_eq!(m.jobs, jobs);
            assert_eq!(m.num_targets, base.num_targets);
            assert_eq!(m.sat_calls.total, base.sat_calls.total);
            assert_eq!(m.sat_calls.conflicts, base.sat_calls.conflicts);
            assert_eq!(m.sat_calls.decisions, base.sat_calls.decisions);
            assert_eq!(m.sat_calls.propagations, base.sat_calls.propagations);
            assert_eq!(
                m.sat_calls.conflict_histogram,
                base.sat_calls.conflict_histogram
            );
            for (a, b) in m
                .sat_calls
                .by_kind
                .iter()
                .zip(base.sat_calls.by_kind.iter())
            {
                assert_eq!(a.calls, b.calls);
                assert_eq!(a.conflicts, b.conflicts);
                assert_eq!(a.conflict_histogram, b.conflict_histogram);
            }
            assert_eq!(m.targets.len(), base.targets.len());
            for (a, b) in m.targets.iter().zip(base.targets.iter()) {
                assert_eq!(a.target_index, b.target_index);
                assert_eq!(a.sat_calls, b.sat_calls);
                assert_eq!(a.observed_sat_calls, b.observed_sat_calls);
                assert_eq!(a.conflicts, b.conflicts);
                assert_eq!(a.conflict_histogram, b.conflict_histogram);
            }
            assert_eq!(m.qbf_refinements, base.qbf_refinements);
            assert_eq!(
                m.quantification_refinements,
                base.quantification_refinements
            );
            assert_eq!(
                m.support_minimization_steps,
                base.support_minimization_steps
            );
            assert_eq!(m.structural_fallbacks, base.structural_fallbacks);
            assert_eq!(m.cegar_min_rounds, base.cegar_min_rounds);
            assert_eq!(m.governor_trips, base.governor_trips);
            assert_eq!(m.ladder_steps, base.ladder_steps);
            // Worker attribution partitions the run totals exactly.
            let worker_calls: u64 = m.workers.iter().map(|w| w.sat_calls).sum();
            assert_eq!(worker_calls, m.sat_calls.total);
            let worker_targets: u64 = m.workers.iter().map(|w| w.targets).sum();
            assert_eq!(worker_targets as usize, m.targets.len());
        }
    }
}

fn golden_metrics() -> RunMetrics {
    let mut by_kind = [KindMetrics::default(); 10];
    by_kind[SatCallKind::Support.index()] = KindMetrics {
        calls: 2,
        conflicts: 4,
        time: Duration::from_micros(50),
        conflict_histogram: [1, 1, 0, 0, 0, 0, 0, 0],
        latency_histogram: [0, 2, 0, 0, 0, 0, 0, 0],
    };
    by_kind[SatCallKind::Minimize.index()] = KindMetrics {
        calls: 1,
        conflicts: 3,
        time: Duration::from_micros(30),
        conflict_histogram: [0, 1, 0, 0, 0, 0, 0, 0],
        latency_histogram: [0, 1, 0, 0, 0, 0, 0, 0],
    };
    by_kind[SatCallKind::Cec.index()] = KindMetrics {
        calls: 1,
        conflicts: 2,
        time: Duration::from_micros(10),
        conflict_histogram: [0, 1, 0, 0, 0, 0, 0, 0],
        latency_histogram: [1, 0, 0, 0, 0, 0, 0, 0],
    };
    RunMetrics {
        request_id: Some("req-7".to_string()),
        num_targets: 1,
        per_call_conflicts: Some(1000),
        jobs: 2,
        workers: vec![
            WorkerMetrics {
                worker: 0,
                targets: 0,
                sat_calls: 1,
                conflicts: 2,
                sat_time: Duration::from_micros(10),
            },
            WorkerMetrics {
                worker: 1,
                targets: 1,
                sat_calls: 3,
                conflicts: 7,
                sat_time: Duration::from_micros(80),
            },
        ],
        elapsed: Duration::from_micros(1234),
        phases: vec![PhaseMetrics {
            phase: Phase::SufficiencyCheck,
            elapsed: Duration::from_micros(10),
        }],
        targets: vec![TargetMetrics {
            target_index: 0,
            sat_calls: 3,
            observed_sat_calls: 3,
            conflicts: 7,
            elapsed: Duration::from_micros(100),
            sat_time: Duration::from_micros(80),
            conflict_histogram: [1, 2, 0, 0, 0, 0, 0, 0],
            latency_histogram: [0, 3, 0, 0, 0, 0, 0, 0],
        }],
        sat_calls: SatCallMetrics {
            total: 4,
            conflicts: 9,
            decisions: 5,
            propagations: 6,
            time: Duration::from_micros(90),
            by_kind,
            conflict_histogram: [1, 3, 0, 0, 0, 0, 0, 0],
            latency_histogram: [1, 3, 0, 0, 0, 0, 0, 0],
        },
        budget: Some(BudgetMetrics {
            per_call_conflicts: 1000,
            max_fraction: 0.5,
            mean_fraction: 0.25,
        }),
        qbf_refinements: 1,
        quantification_refinements: 2,
        support_minimization_steps: 3,
        structural_fallbacks: 0,
        cegar_min_rounds: 4,
        governor_trips: 5,
        ladder_steps: 6,
        cache: CacheCounters {
            window_hits: 1,
            window_misses: 2,
            cnf_hits: 3,
            cnf_misses: 4,
            ..CacheCounters::default()
        },
        serving: ServingCounters {
            shed: 8,
            expired: 9,
            retried: 10,
            panicked: 11,
        },
        sweep: SweepCounters {
            classes: 12,
            merges: 13,
            sweep_sat_calls: 14,
            refinement_rounds: 15,
            nodes_eliminated: 16,
            oracle_hits: 17,
            sim_discharged_outputs: 18,
        },
        classes: ClassesCounters {
            partitions: 19,
            representatives: 20,
            inherited_answers: 21,
            refinement_rounds: 22,
            witness_replays: 23,
        },
    }
}

#[test]
fn run_metrics_golden_json() {
    const ZERO_KIND: &str = "{\"calls\":0,\"conflicts\":0,\"time_us\":0,\
                             \"conflict_histogram\":[0,0,0,0,0,0,0,0],\
                             \"latency_histogram\":[0,0,0,0,0,0,0,0]}";
    let expected = format!(
        concat!(
            "{{\"schema_version\":8,\"request_id\":\"req-7\",",
            "\"num_targets\":1,\"per_call_conflicts\":1000,",
            "\"jobs\":2,\"elapsed_us\":1234,",
            "\"phases\":[{{\"phase\":\"sufficiency_check\",\"elapsed_us\":10}}],",
            "\"targets\":[{{\"target_index\":0,\"sat_calls\":3,\"observed_sat_calls\":3,",
            "\"conflicts\":7,\"elapsed_us\":100,\"sat_time_us\":80,",
            "\"conflict_histogram\":[1,2,0,0,0,0,0,0],",
            "\"latency_histogram\":[0,3,0,0,0,0,0,0]}}],",
            "\"workers\":[{{\"worker\":0,\"targets\":0,\"sat_calls\":1,\"conflicts\":2,",
            "\"sat_time_us\":10}},",
            "{{\"worker\":1,\"targets\":1,\"sat_calls\":3,\"conflicts\":7,",
            "\"sat_time_us\":80}}],",
            "\"sat_calls\":{{\"total\":4,\"conflicts\":9,\"decisions\":5,\"propagations\":6,",
            "\"time_us\":90,\"by_kind\":{{",
            "\"qbf\":{z},",
            "\"support\":{{\"calls\":2,\"conflicts\":4,\"time_us\":50,",
            "\"conflict_histogram\":[1,1,0,0,0,0,0,0],",
            "\"latency_histogram\":[0,2,0,0,0,0,0,0]}},",
            "\"minimize\":{{\"calls\":1,\"conflicts\":3,\"time_us\":30,",
            "\"conflict_histogram\":[0,1,0,0,0,0,0,0],",
            "\"latency_histogram\":[0,1,0,0,0,0,0,0]}},",
            "\"cube_enumeration\":{z},\"sat_prune_search\":{z},\"cegar_min\":{z},",
            "\"refinement\":{z},",
            "\"cec\":{{\"calls\":1,\"conflicts\":2,\"time_us\":10,",
            "\"conflict_histogram\":[0,1,0,0,0,0,0,0],",
            "\"latency_histogram\":[1,0,0,0,0,0,0,0]}},",
            "\"sweep\":{z},\"classes\":{z}}},",
            "\"conflict_histogram\":[1,3,0,0,0,0,0,0],",
            "\"latency_histogram\":[1,3,0,0,0,0,0,0]}},",
            "\"budget\":{{\"per_call_conflicts\":1000,\"max_fraction\":0.500000,",
            "\"mean_fraction\":0.250000}},",
            "\"counters\":{{\"qbf_refinements\":1,\"quantification_refinements\":2,",
            "\"support_minimization_steps\":3,\"structural_fallbacks\":0,",
            "\"cegar_min_rounds\":4,\"governor_trips\":5,\"ladder_steps\":6}},",
            "\"cache\":{{\"netlist_hits\":0,\"netlist_misses\":0,\"window_hits\":1,",
            "\"window_misses\":2,\"cnf_hits\":3,\"cnf_misses\":4,\"target_hits\":0,",
            "\"target_misses\":0,\"outcome_hits\":0,\"outcome_misses\":0}},",
            "\"serving\":{{\"shed\":8,\"expired\":9,\"retried\":10,\"panicked\":11}},",
            "\"sweep\":{{\"classes\":12,\"merges\":13,\"sweep_sat_calls\":14,",
            "\"refinement_rounds\":15,\"nodes_eliminated\":16,\"oracle_hits\":17,",
            "\"sim_discharged_outputs\":18}},",
            "\"classes\":{{\"partitions\":19,\"representatives\":20,",
            "\"inherited_answers\":21,\"refinement_rounds\":22,",
            "\"witness_replays\":23}}}}"
        ),
        z = ZERO_KIND
    );
    assert_eq!(golden_metrics().to_json(), expected);
}

#[test]
fn run_metrics_v8_round_trips_through_parser() {
    let metrics = golden_metrics();
    let doc = parse_json(&metrics.to_json()).expect("schema v8 output is valid JSON");
    let u = |v: &JsonValue, key: &str| v.get(key).and_then(JsonValue::as_u64);
    assert_eq!(u(&doc, "schema_version"), Some(8));
    let serving = doc.get("serving").expect("serving counters object");
    assert_eq!(u(serving, "shed"), Some(8));
    assert_eq!(u(serving, "expired"), Some(9));
    assert_eq!(u(serving, "retried"), Some(10));
    assert_eq!(u(serving, "panicked"), Some(11));
    let sweep = doc.get("sweep").expect("sweep counters object");
    assert_eq!(u(sweep, "classes"), Some(12));
    assert_eq!(u(sweep, "merges"), Some(13));
    assert_eq!(u(sweep, "sweep_sat_calls"), Some(14));
    assert_eq!(u(sweep, "refinement_rounds"), Some(15));
    assert_eq!(u(sweep, "nodes_eliminated"), Some(16));
    assert_eq!(u(sweep, "oracle_hits"), Some(17));
    assert_eq!(u(sweep, "sim_discharged_outputs"), Some(18));
    let classes = doc.get("classes").expect("classes counters object");
    assert_eq!(u(classes, "partitions"), Some(19));
    assert_eq!(u(classes, "representatives"), Some(20));
    assert_eq!(u(classes, "inherited_answers"), Some(21));
    assert_eq!(u(classes, "refinement_rounds"), Some(22));
    assert_eq!(u(classes, "witness_replays"), Some(23));
    assert_eq!(
        doc.get("request_id").and_then(JsonValue::as_str),
        Some("req-7")
    );
    let cache = doc.get("cache").expect("cache counters object");
    assert_eq!(u(cache, "window_hits"), Some(1));
    assert_eq!(u(cache, "cnf_misses"), Some(4));
    assert_eq!(u(&doc, "num_targets"), Some(1));
    assert_eq!(u(&doc, "jobs"), Some(2));
    assert_eq!(u(&doc, "elapsed_us"), Some(1234));
    let workers = doc
        .get("workers")
        .and_then(JsonValue::as_array)
        .expect("workers array");
    assert_eq!(workers.len(), 2);
    assert_eq!(u(&workers[1], "worker"), Some(1));
    assert_eq!(u(&workers[1], "targets"), Some(1));
    assert_eq!(u(&workers[1], "sat_calls"), Some(3));
    assert_eq!(u(&workers[1], "sat_time_us"), Some(80));
    let sat = doc.get("sat_calls").expect("sat_calls object");
    assert_eq!(u(sat, "total"), Some(4));
    assert_eq!(u(sat, "time_us"), Some(90));
    let by_kind = sat.get("by_kind").expect("by_kind object");
    for kind in SatCallKind::ALL {
        let entry = by_kind.get(kind.name()).expect("every kind present");
        let calls = u(entry, "calls").expect("calls");
        assert_eq!(
            calls,
            metrics.sat_calls.by_kind[kind.index()].calls,
            "{}",
            kind.name()
        );
        let lat: u64 = entry
            .get("latency_histogram")
            .and_then(JsonValue::as_array)
            .expect("latency histogram")
            .iter()
            .filter_map(JsonValue::as_u64)
            .sum();
        assert_eq!(
            lat,
            calls,
            "histogram mass equals calls for {}",
            kind.name()
        );
    }
    let target = &doc
        .get("targets")
        .and_then(JsonValue::as_array)
        .expect("targets")[0];
    assert_eq!(u(target, "sat_time_us"), Some(80));
    let budget = doc.get("budget").expect("budget object");
    assert_eq!(
        budget.get("max_fraction").and_then(JsonValue::as_f64),
        Some(0.5)
    );
}
