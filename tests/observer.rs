//! Observer-layer integration tests: phase nesting, SAT-call
//! attribution reconciling with the per-target reports, and the
//! stability of the `RunMetrics` JSON schema.

use eco_patch::aig::Aig;
use eco_patch::core::{
    BudgetMetrics, EcoEngine, EcoEvent, EcoObserver, EcoOptions, EcoProblem, PatchKind, Phase,
    PhaseMetrics, RunMetrics, SatCallKind, SatCallMetrics, SupportMethod, TargetMetrics,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Records every event for post-run inspection.
#[derive(Default)]
struct Recorder {
    events: Vec<EcoEvent>,
}

impl EcoObserver for Recorder {
    fn on_event(&mut self, event: &EcoEvent) {
        self.events.push(event.clone());
    }
}

fn and_vs_or_problem() -> EcoProblem {
    let mut im = Aig::new();
    let (a, b) = (im.add_input(), im.add_input());
    let t = im.and(a, b);
    im.add_output(t);
    let t_node = t.node();
    let mut sp = Aig::new();
    let (a, b) = (sp.add_input(), sp.add_input());
    let o = sp.or(a, b);
    sp.add_output(o);
    EcoProblem::with_unit_weights(im, sp, vec![t_node]).expect("valid")
}

fn multi_target_problem() -> EcoProblem {
    // impl y = (a&b) & (b&c); spec y = a ^ c; both ANDs are targets.
    let mut im = Aig::new();
    let (a, b, c) = (im.add_input(), im.add_input(), im.add_input());
    let t1 = im.and(a, b);
    let t2 = im.and(b, c);
    let y = im.and(t1, t2);
    im.add_output(y);
    let mut sp = Aig::new();
    let (a, _b, c) = (sp.add_input(), sp.add_input(), sp.add_input());
    let y = sp.xor(a, c);
    sp.add_output(y);
    EcoProblem::with_unit_weights(im, sp, vec![t1.node(), t2.node()]).expect("valid")
}

fn record_run(
    options: EcoOptions,
    problem: &EcoProblem,
) -> (eco_patch::core::EcoOutcome, Vec<EcoEvent>) {
    let recorder = Arc::new(Mutex::new(Recorder::default()));
    let engine = EcoEngine::new(options)
        .with_shared_observer(recorder.clone() as Arc<Mutex<dyn EcoObserver + Send>>);
    let outcome = engine.run(problem).expect("engine run");
    let events = std::mem::take(&mut recorder.lock().expect("no poison").events);
    (outcome, events)
}

#[test]
fn phases_nest_and_cover_the_whole_run() {
    let (_, events) = record_run(EcoOptions::builder().build(), &multi_target_problem());
    assert!(
        matches!(
            events.first(),
            Some(EcoEvent::RunStarted { num_targets: 2, .. })
        ),
        "first event must be RunStarted"
    );
    assert!(
        matches!(events.last(), Some(EcoEvent::RunFinished { .. })),
        "last event must be RunFinished"
    );

    // Exactly one Started/Finished pair per phase, in flow order, with
    // no overlap, and every inner event inside some phase.
    let mut open: Option<Phase> = None;
    let mut finished: Vec<Phase> = Vec::new();
    let mut open_target: Option<usize> = None;
    for event in &events {
        match event {
            EcoEvent::RunStarted { .. } | EcoEvent::RunFinished { .. } => {
                assert!(open.is_none(), "run boundary inside phase {open:?}");
            }
            EcoEvent::PhaseStarted { phase } => {
                assert!(open.is_none(), "phase {phase:?} started inside {open:?}");
                open = Some(*phase);
            }
            EcoEvent::PhaseFinished { phase, .. } => {
                assert_eq!(open, Some(*phase), "finish must match the open phase");
                assert!(
                    open_target.is_none(),
                    "phase closed with target {open_target:?} open"
                );
                finished.push(*phase);
                open = None;
            }
            EcoEvent::TargetStarted { target_index } => {
                assert_eq!(open, Some(Phase::PatchGeneration));
                assert!(open_target.is_none());
                open_target = Some(*target_index);
            }
            EcoEvent::TargetFinished { target_index, .. } => {
                assert_eq!(open_target, Some(*target_index));
                open_target = None;
            }
            _ => {
                assert!(open.is_some(), "event {event:?} emitted outside any phase");
            }
        }
    }
    assert_eq!(
        finished,
        Phase::ALL.to_vec(),
        "all phases complete, in flow order"
    );
}

/// Sums the `SatCall` events attributed to each target.
fn attributed_calls(events: &[EcoEvent]) -> HashMap<usize, u64> {
    let mut by_target: HashMap<usize, u64> = HashMap::new();
    for event in events {
        if let EcoEvent::SatCall {
            target_index: Some(ti),
            ..
        } = event
        {
            *by_target.entry(*ti).or_default() += 1;
        }
    }
    by_target
}

#[test]
fn attributed_sat_calls_match_reports_for_every_method() {
    for method in [
        SupportMethod::AnalyzeFinal,
        SupportMethod::MinimizeAssumptions,
        SupportMethod::SatPrune,
    ] {
        for problem in [and_vs_or_problem(), multi_target_problem()] {
            let (outcome, events) =
                record_run(EcoOptions::builder().method(method).build(), &problem);
            let by_target = attributed_calls(&events);
            for report in &outcome.reports {
                if report.kind == PatchKind::TrivialDead {
                    continue;
                }
                assert_eq!(
                    by_target.get(&report.target_index).copied().unwrap_or(0),
                    report.sat_calls,
                    "{method:?}: events for target {} must match its report",
                    report.target_index
                );
            }
        }
    }
}

#[test]
fn attributed_sat_calls_match_reports_on_structural_fallback() {
    let options = EcoOptions::builder()
        .per_call_conflicts(Some(0)) // force the fallback
        .cegar_min(true)
        .verify(false)
        .build();
    let (outcome, events) = record_run(options, &and_vs_or_problem());
    assert_eq!(outcome.reports[0].kind, PatchKind::StructuralCegarMin);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, EcoEvent::StructuralFallback { target_index: 0 })),
        "fallback must be announced"
    );
    let by_target = attributed_calls(&events);
    assert_eq!(
        by_target.get(&0).copied().unwrap_or(0),
        outcome.reports[0].sat_calls,
        "carried calls from the failed SAT attempt stay attributed"
    );
}

#[test]
fn metrics_observer_reconciles_with_reports() {
    let engine = EcoEngine::new(EcoOptions::builder().build()).with_metrics();
    let outcome = engine.run(&multi_target_problem()).expect("engine run");
    let metrics = outcome.metrics.as_ref().expect("with_metrics attached");
    assert_eq!(metrics.num_targets, 2);
    assert!(!metrics.targets.is_empty());
    for target in &metrics.targets {
        assert_eq!(
            target.observed_sat_calls, target.sat_calls,
            "target {}: event count must equal the reported count",
            target.target_index
        );
        let report = outcome
            .reports
            .iter()
            .find(|r| r.target_index == target.target_index)
            .expect("report exists");
        assert_eq!(target.sat_calls, report.sat_calls);
    }
    let total_by_kind: u64 = metrics.sat_calls.by_kind.iter().sum();
    assert_eq!(total_by_kind, metrics.sat_calls.total);
    let histogram_total: u64 = metrics.sat_calls.conflict_histogram.iter().sum();
    assert_eq!(histogram_total, metrics.sat_calls.total);
    assert_eq!(metrics.phases.len(), Phase::ALL.len());
    // The final CEC may be discharged structurally (no SAT call), but the
    // patch-generation calls themselves must be visible.
    assert!(metrics.sat_calls.total > 0);
    assert!(metrics.sat_calls.by_kind[SatCallKind::Support.index()] >= 1);
}

#[test]
fn run_metrics_golden_json() {
    let metrics = RunMetrics {
        num_targets: 1,
        per_call_conflicts: Some(1000),
        elapsed: Duration::from_micros(1234),
        phases: vec![PhaseMetrics {
            phase: Phase::SufficiencyCheck,
            elapsed: Duration::from_micros(10),
        }],
        targets: vec![TargetMetrics {
            target_index: 0,
            sat_calls: 3,
            observed_sat_calls: 3,
            conflicts: 7,
            elapsed: Duration::from_micros(100),
            conflict_histogram: [1, 2, 0, 0, 0, 0, 0, 0],
        }],
        sat_calls: SatCallMetrics {
            total: 4,
            conflicts: 9,
            decisions: 5,
            propagations: 6,
            by_kind: [0, 2, 1, 0, 0, 0, 0, 1],
            conflict_histogram: [1, 3, 0, 0, 0, 0, 0, 0],
        },
        budget: Some(BudgetMetrics {
            per_call_conflicts: 1000,
            max_fraction: 0.5,
            mean_fraction: 0.25,
        }),
        qbf_refinements: 1,
        quantification_refinements: 2,
        support_minimization_steps: 3,
        structural_fallbacks: 0,
        cegar_min_rounds: 4,
        governor_trips: 5,
        ladder_steps: 6,
    };
    let expected = concat!(
        "{\"schema_version\":2,\"num_targets\":1,\"per_call_conflicts\":1000,",
        "\"elapsed_us\":1234,",
        "\"phases\":[{\"phase\":\"sufficiency_check\",\"elapsed_us\":10}],",
        "\"targets\":[{\"target_index\":0,\"sat_calls\":3,\"observed_sat_calls\":3,",
        "\"conflicts\":7,\"elapsed_us\":100,",
        "\"conflict_histogram\":[1,2,0,0,0,0,0,0]}],",
        "\"sat_calls\":{\"total\":4,\"conflicts\":9,\"decisions\":5,\"propagations\":6,",
        "\"by_kind\":{\"qbf\":0,\"support\":2,\"minimize\":1,\"cube_enumeration\":0,",
        "\"sat_prune_search\":0,\"cegar_min\":0,\"refinement\":0,\"cec\":1},",
        "\"conflict_histogram\":[1,3,0,0,0,0,0,0]},",
        "\"budget\":{\"per_call_conflicts\":1000,\"max_fraction\":0.500000,",
        "\"mean_fraction\":0.250000},",
        "\"counters\":{\"qbf_refinements\":1,\"quantification_refinements\":2,",
        "\"support_minimization_steps\":3,\"structural_fallbacks\":0,",
        "\"cegar_min_rounds\":4,\"governor_trips\":5,\"ladder_steps\":6}}"
    );
    assert_eq!(metrics.to_json(), expected);
}
