//! Parallel determinism suite: the engine must produce byte-identical
//! results at every `jobs` setting. Batching, strategy racing, and
//! concurrent verification sweeps change *where* work runs, never
//! *what* is computed, so the patched netlist text, the applied
//! patches, and the per-target reports must not move between
//! `--jobs 1` and `--jobs 4`.

use eco_patch::benchgen::{build_unit, table1_units};
use eco_patch::core::{
    check_equivalence, AppliedPatch, CecResult, EcoEngine, EcoOptions, EcoOutcome, EcoProblem,
    SupportMethod,
};
use eco_patch::netlist::Netlist;

const TEST_SCALE: f64 = 0.02;

fn run_at(problem: &EcoProblem, options: EcoOptions, name: &str) -> EcoOutcome {
    EcoEngine::new(options)
        .solve(&problem.snapshot())
        .unwrap_or_else(|e| panic!("{name} failed: {e}"))
}

/// Serializes the patched implementation exactly as the CLI's rebuilt
/// path would, so "byte-identical" means the emitted artifact.
fn patched_text(outcome: &EcoOutcome) -> String {
    Netlist::from_aig("patched".to_string(), &outcome.patched_implementation).to_verilog()
}

/// A deterministic rendering of one applied patch: target, support
/// literals, and the patch network serialized as Verilog (the `Aig`
/// `Debug` form is unsuitable — its strash map iterates in hash
/// order).
fn patch_fingerprint(p: &AppliedPatch) -> String {
    format!(
        "target={} support={:?} original={:?} aig={}",
        p.target_index,
        p.support,
        p.original_support,
        Netlist::from_aig("patch".to_string(), &p.aig).to_verilog()
    )
}

fn assert_outcomes_identical(seq: &EcoOutcome, par: &EcoOutcome, name: &str) {
    assert_eq!(
        format!("{:?}", seq.reports),
        format!("{:?}", par.reports),
        "{name}: per-target reports (dispositions, kinds, costs) must be jobs-invariant"
    );
    let fingerprints = |o: &EcoOutcome| o.patches.iter().map(patch_fingerprint).collect::<Vec<_>>();
    assert_eq!(
        fingerprints(seq),
        fingerprints(par),
        "{name}: applied patches must be jobs-invariant"
    );
    assert_eq!(seq.total_cost, par.total_cost, "{name}: total cost");
    assert_eq!(seq.total_gates, par.total_gates, "{name}: total gates");
    assert_eq!(seq.verified, par.verified, "{name}: verification verdict");
    assert_eq!(
        patched_text(seq),
        patched_text(par),
        "{name}: patched netlist text must be byte-identical"
    );
}

#[test]
fn suite_outcomes_are_byte_identical_across_jobs() {
    for unit in table1_units(TEST_SCALE).iter() {
        let problem = build_unit(unit);
        let opts = |jobs: usize| {
            EcoOptions::builder()
                .jobs(jobs)
                .build()
                .expect("valid options")
        };
        let seq = run_at(&problem, opts(1), unit.name);
        let par = run_at(&problem, opts(4), unit.name);
        assert_outcomes_identical(&seq, &par, unit.name);
        // Both patched netlists are real repairs, not merely identical.
        for (label, outcome) in [("jobs=1", &seq), ("jobs=4", &par)] {
            assert_eq!(
                check_equivalence(
                    &outcome.patched_implementation,
                    &problem.specification,
                    None
                ),
                CecResult::Equivalent,
                "{} ({label}): patched netlist must match the spec",
                unit.name
            );
        }
    }
}

#[test]
fn racing_ladder_is_byte_identical_under_per_call_budgets() {
    // A tight per-call budget forces the degradation ladder, so jobs=4
    // races the reduced-effort and structural rungs against the full
    // attempt. Under per-call budgets alone the winner is decided in
    // ladder order, so the result must still match jobs=1 byte for
    // byte.
    for unit in table1_units(TEST_SCALE).iter().take(6) {
        let problem = build_unit(unit);
        let opts = |jobs: usize| {
            EcoOptions::builder()
                .per_call_conflicts(Some(2))
                .cegar_min(true)
                .jobs(jobs)
                .build()
                .expect("valid options")
        };
        let seq = run_at(&problem, opts(1), unit.name);
        let par = run_at(&problem, opts(4), unit.name);
        assert_outcomes_identical(&seq, &par, unit.name);
    }
}

#[test]
fn sat_prune_suite_is_byte_identical_across_jobs() {
    for unit in table1_units(TEST_SCALE)
        .iter()
        .filter(|u| u.num_targets >= 2)
        .take(4)
    {
        let problem = build_unit(unit);
        let opts = |jobs: usize| {
            EcoOptions::builder()
                .method(SupportMethod::SatPrune)
                .jobs(jobs)
                .build()
                .expect("valid options")
        };
        let seq = run_at(&problem, opts(1), unit.name);
        let par = run_at(&problem, opts(4), unit.name);
        assert_outcomes_identical(&seq, &par, unit.name);
    }
}
