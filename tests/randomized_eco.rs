//! Randomized integration tests: random circuits with injected ECOs
//! must always be solvable, verified, and round-trippable.

use eco_patch::benchgen::{inject_eco, random_aig, CircuitSpec, InjectSpec};
use eco_patch::core::{
    check_targets_sufficient, generate_weights, EcoEngine, EcoOptions, EcoProblem, QbfOutcome,
    SupportMethod, WeightDistribution,
};
use eco_testutil::{cases, Rng};

fn random_instance(rng: &mut Rng) -> (CircuitSpec, usize, u64) {
    let pi = rng.range(4, 14) as usize;
    let po = rng.range(2, 6) as usize;
    let gates = rng.range(40, 160) as usize;
    let targets = rng.range(1, 4) as usize;
    let seed = rng.below(1000);
    (
        CircuitSpec {
            num_inputs: pi,
            num_outputs: po,
            num_gates: gates,
            seed,
        },
        targets,
        seed,
    )
}

#[test]
fn injected_instances_always_solve_and_verify() {
    cases(24, |case, rng| {
        let (spec, num_targets, seed) = random_instance(rng);
        let dist_idx = rng.index(8);
        let implementation = random_aig(&spec);
        let Some(injected) = inject_eco(&implementation, &InjectSpec { num_targets, seed }) else {
            return; // circuit too small for that many targets
        };
        let weights = generate_weights(
            &implementation,
            WeightDistribution::from_index(dist_idx),
            seed,
        );
        let problem = EcoProblem::new(
            implementation,
            injected.specification,
            injected.targets,
            weights,
        )
        .expect("valid problem");
        // The instance is solvable by construction, so the QBF check must
        // agree...
        match check_targets_sufficient(&problem, 1024, None) {
            QbfOutcome::Solvable { .. } => {}
            other => panic!("case {case}: sufficiency check said {other:?}"),
        }
        // ...and the engine must find verified patches.
        let outcome = EcoEngine::new(
            EcoOptions::builder()
                .method(SupportMethod::MinimizeAssumptions)
                .build()
                .expect("valid options"),
        )
        .solve(&problem.snapshot())
        .expect("engine solves injected instances");
        assert!(outcome.verified, "case {case}");
        // Cost accounting sanity: the support cost is the sum of reports.
        let sum: u64 = outcome.reports.iter().map(|r| r.cost).sum();
        assert_eq!(sum, outcome.total_cost, "case {case}");
    });
}

#[test]
fn patched_netlists_roundtrip_through_aag() {
    cases(24, |case, rng| {
        let (spec, num_targets, _) = random_instance(rng);
        let seed = spec.seed;
        let implementation = random_aig(&spec);
        let Some(injected) = inject_eco(&implementation, &InjectSpec { num_targets, seed }) else {
            return;
        };
        let problem =
            EcoProblem::with_unit_weights(implementation, injected.specification, injected.targets)
                .expect("valid problem");
        let outcome = EcoEngine::new(EcoOptions::default())
            .solve(&problem.snapshot())
            .expect("engine solves");
        let text = outcome.patched_implementation.to_aag();
        let back = eco_patch::aig::Aig::from_aag(&text).expect("roundtrip");
        use eco_patch::core::{check_equivalence, CecResult};
        assert_eq!(
            check_equivalence(&back, &problem.specification, None),
            CecResult::Equivalent,
            "case {case}"
        );
    });
}
