//! Property-based integration tests: random circuits with injected
//! ECOs must always be solvable, verified, and round-trippable.

use eco_patch::benchgen::{inject_eco, random_aig, CircuitSpec, InjectSpec};
use eco_patch::core::{
    check_targets_sufficient, generate_weights, EcoEngine, EcoOptions, EcoProblem, QbfOutcome,
    SupportMethod, WeightDistribution,
};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = (CircuitSpec, usize, u64)> {
    (
        4usize..14,  // inputs
        2usize..6,   // outputs
        40usize..160, // gates
        1usize..4,   // targets
        0u64..1000,  // seed
    )
        .prop_map(|(pi, po, gates, targets, seed)| {
            (
                CircuitSpec { num_inputs: pi, num_outputs: po, num_gates: gates, seed },
                targets,
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn injected_instances_always_solve_and_verify(
        (spec, num_targets, seed) in arb_instance(),
        dist_idx in 0usize..8,
    ) {
        let implementation = random_aig(&spec);
        let Some(injected) =
            inject_eco(&implementation, &InjectSpec { num_targets, seed })
        else {
            return Ok(()); // circuit too small for that many targets
        };
        let weights = generate_weights(
            &implementation,
            WeightDistribution::from_index(dist_idx),
            seed,
        );
        let problem = EcoProblem::new(
            implementation,
            injected.specification,
            injected.targets,
            weights,
        )
        .expect("valid problem");
        // The instance is solvable by construction, so the QBF check must
        // agree...
        match check_targets_sufficient(&problem, 1024, None) {
            QbfOutcome::Solvable { .. } => {}
            other => prop_assert!(false, "sufficiency check said {other:?}"),
        }
        // ...and the engine must find verified patches.
        let outcome = EcoEngine::new(EcoOptions {
            method: SupportMethod::MinimizeAssumptions,
            ..EcoOptions::default()
        })
        .run(&problem)
        .expect("engine solves injected instances");
        prop_assert!(outcome.verified);
        // Cost accounting sanity: the support cost is the sum of reports.
        let sum: u64 = outcome.reports.iter().map(|r| r.cost).sum();
        prop_assert_eq!(sum, outcome.total_cost);
    }

    #[test]
    fn patched_netlists_roundtrip_through_aag(
        (spec, num_targets, seed) in arb_instance(),
    ) {
        let implementation = random_aig(&spec);
        let Some(injected) =
            inject_eco(&implementation, &InjectSpec { num_targets, seed })
        else {
            return Ok(());
        };
        let problem = EcoProblem::with_unit_weights(
            implementation,
            injected.specification,
            injected.targets,
        )
        .expect("valid problem");
        let outcome = EcoEngine::new(EcoOptions::default())
            .run(&problem)
            .expect("engine solves");
        let text = outcome.patched_implementation.to_aag();
        let back = eco_patch::aig::Aig::from_aag(&text).expect("roundtrip");
        use eco_patch::core::{check_equivalence, CecResult};
        prop_assert_eq!(
            check_equivalence(&back, &problem.specification, None),
            CecResult::Equivalent
        );
    }
}
