//! Integration tests over the synthetic suite: the engine must solve
//! and verify every unit at test scale, across methods, and the
//! Table 1 trend (minimize_assumptions ≤ baseline cost on geomean)
//! must hold.

use eco_patch::benchgen::{build_unit, table1_units};
use eco_patch::core::{EcoEngine, EcoOptions, SupportMethod};

const TEST_SCALE: f64 = 0.02;

#[test]
fn all_units_solve_and_verify_with_minimize_assumptions() {
    for (i, unit) in table1_units(TEST_SCALE).iter().enumerate() {
        let problem = build_unit(unit);
        let engine = EcoEngine::new(
            EcoOptions::builder()
                .method(SupportMethod::MinimizeAssumptions)
                .build()
                .expect("valid options"),
        );
        let outcome = engine
            .solve(&problem.snapshot())
            .unwrap_or_else(|e| panic!("{} failed: {e}", unit.name));
        assert!(outcome.verified, "{} (index {i}) did not verify", unit.name);
        assert_eq!(
            outcome.reports.len(),
            unit.num_targets,
            "{}: one report per target",
            unit.name
        );
    }
}

#[test]
fn single_target_units_solve_with_analyze_final_baseline() {
    for unit in table1_units(TEST_SCALE)
        .iter()
        .filter(|u| u.num_targets == 1)
    {
        let problem = build_unit(unit);
        let engine = EcoEngine::new(
            EcoOptions::builder()
                .method(SupportMethod::AnalyzeFinal)
                .build()
                .expect("valid options"),
        );
        let outcome = engine
            .solve(&problem.snapshot())
            .unwrap_or_else(|e| panic!("{} failed: {e}", unit.name));
        assert!(outcome.verified, "{}", unit.name);
    }
}

#[test]
fn minimize_assumptions_beats_baseline_on_geomean_cost() {
    let mut log_ratio_sum = 0.0;
    let mut count = 0;
    for unit in table1_units(TEST_SCALE).iter().take(12) {
        let problem = build_unit(unit);
        let run = |method| {
            EcoEngine::new(
                EcoOptions::builder()
                    .method(method)
                    .build()
                    .expect("valid options"),
            )
            .solve(&problem.snapshot())
            .map(|o| o.total_cost)
            .unwrap_or(u64::MAX)
        };
        let baseline = run(SupportMethod::AnalyzeFinal);
        let minimized = run(SupportMethod::MinimizeAssumptions);
        if baseline > 0 && baseline != u64::MAX && minimized > 0 {
            log_ratio_sum += (minimized as f64 / baseline as f64).ln();
            count += 1;
        }
    }
    assert!(count >= 5, "need enough comparable units, got {count}");
    let geomean = (log_ratio_sum / count as f64).exp();
    // The paper reports 0.26; on small synthetic units we only require
    // a clear improvement.
    assert!(
        geomean < 0.9,
        "minimize_assumptions should beat the baseline (geomean {geomean:.2})"
    );
}

#[test]
fn multi_target_units_solve_with_sat_prune() {
    for unit in table1_units(TEST_SCALE)
        .iter()
        .filter(|u| u.num_targets >= 2 && u.num_targets <= 4)
        .take(3)
    {
        let problem = build_unit(unit);
        let engine = EcoEngine::new(
            EcoOptions::builder()
                .method(SupportMethod::SatPrune)
                .build()
                .expect("valid options"),
        );
        let outcome = engine
            .solve(&problem.snapshot())
            .unwrap_or_else(|e| panic!("{} failed: {e}", unit.name));
        assert!(outcome.verified, "{}", unit.name);
    }
}

#[test]
fn structural_path_verifies_on_every_unit() {
    use eco_patch::core::{check_equivalence, CecResult};
    for unit in table1_units(0.015).iter().take(10) {
        let problem = build_unit(unit);
        let options = EcoOptions::builder()
            .per_call_conflicts(Some(0)) // force structural
            .cegar_min(true)
            .verify(false)
            .build()
            .expect("valid options");
        let engine = EcoEngine::new(options);
        let outcome = engine
            .solve(&problem.snapshot())
            .unwrap_or_else(|e| panic!("{} failed: {e}", unit.name));
        assert_eq!(
            check_equivalence(
                &outcome.patched_implementation,
                &problem.specification,
                None
            ),
            CecResult::Equivalent,
            "{}: structural patches must be correct",
            unit.name
        );
    }
}
