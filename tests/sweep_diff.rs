//! Byte-identity suite for `--sweep`: the simulation-guided sweeping
//! layer may only *avoid* SAT calls whose verdicts it can prove by
//! simulation — it must never move a support, a patch, a cost, a
//! disposition, or a byte of the emitted netlist. Sweeping on must
//! also never issue *more* SAT calls than sweeping off.

use std::io::Write;
use std::process::Command;

use eco_patch::benchgen::{build_unit, table1_units};
use eco_patch::core::{
    AppliedPatch, EcoEngine, EcoOptions, EcoOutcome, EcoProblem, RunMetrics, SupportMethod,
};
use eco_patch::netlist::Netlist;

const TEST_SCALE: f64 = 0.02;

fn run(problem: &EcoProblem, options: EcoOptions, name: &str) -> EcoOutcome {
    EcoEngine::new(options)
        .with_metrics()
        .solve(&problem.snapshot())
        .unwrap_or_else(|e| panic!("{name} failed: {e}"))
}

fn patched_text(outcome: &EcoOutcome) -> String {
    Netlist::from_aig("patched".to_string(), &outcome.patched_implementation).to_verilog()
}

fn patch_fingerprint(p: &AppliedPatch) -> String {
    format!(
        "target={} support={:?} original={:?} aig={}",
        p.target_index,
        p.support,
        p.original_support,
        Netlist::from_aig("patch".to_string(), &p.aig).to_verilog()
    )
}

fn assert_outcomes_identical(off: &EcoOutcome, on: &EcoOutcome, name: &str) {
    assert_eq!(
        format!("{:?}", off.reports),
        format!("{:?}", on.reports),
        "{name}: per-target reports (dispositions, kinds, costs, sat_calls) must not move"
    );
    let fingerprints = |o: &EcoOutcome| o.patches.iter().map(patch_fingerprint).collect::<Vec<_>>();
    assert_eq!(
        fingerprints(off),
        fingerprints(on),
        "{name}: applied patches must not move"
    );
    assert_eq!(off.total_cost, on.total_cost, "{name}: total cost");
    assert_eq!(off.total_gates, on.total_gates, "{name}: total gates");
    assert_eq!(off.verified, on.verified, "{name}: verification verdict");
    assert_eq!(
        patched_text(off),
        patched_text(on),
        "{name}: patched netlist text must be byte-identical"
    );
}

fn metrics<'a>(outcome: &'a EcoOutcome, name: &str) -> &'a RunMetrics {
    outcome
        .metrics
        .as_ref()
        .unwrap_or_else(|| panic!("{name}: metrics requested"))
}

#[test]
fn sweep_on_matches_sweep_off_byte_for_byte() {
    for unit in table1_units(TEST_SCALE).iter() {
        let problem = build_unit(unit);
        let opts = |sweep: bool| {
            EcoOptions::builder()
                .sweep(sweep)
                .build()
                .expect("valid options")
        };
        let off = run(&problem, opts(false), unit.name);
        let on = run(&problem, opts(true), unit.name);
        assert_outcomes_identical(&off, &on, unit.name);
        assert!(
            metrics(&on, unit.name).sat_calls.total <= metrics(&off, unit.name).sat_calls.total,
            "{}: sweeping must not add SAT calls",
            unit.name
        );
    }
}

#[test]
fn sweeping_never_adds_sat_calls_on_unit20() {
    // SatPrune issues orders of magnitude more subset-feasibility
    // calls than MinimizeAssumptions, so it runs at a smaller scale to
    // keep the unoptimized test build quick.
    for (method, scale) in [
        (SupportMethod::MinimizeAssumptions, TEST_SCALE),
        (SupportMethod::SatPrune, 0.008),
    ] {
        let unit = table1_units(scale)
            .into_iter()
            .find(|u| u.name == "unit20")
            .expect("unit20 exists");
        let problem = build_unit(&unit);
        let opts = |sweep: bool| {
            EcoOptions::builder()
                .method(method)
                .sweep(sweep)
                .build()
                .expect("valid options")
        };
        let name = format!("unit20/{method:?}");
        let off = run(&problem, opts(false), &name);
        let on = run(&problem, opts(true), &name);
        assert_outcomes_identical(&off, &on, &name);
        let (off_m, on_m) = (metrics(&off, &name), metrics(&on, &name));
        assert!(
            on_m.sat_calls.total <= off_m.sat_calls.total,
            "{name}: sweep-on issued {} SAT calls, sweep-off {}",
            on_m.sat_calls.total,
            off_m.sat_calls.total
        );
        // The sweep layer actually engaged: candidate classes were
        // partitioned and the counters made it into RunMetrics.
        assert!(
            on_m.sweep.classes > 0 || on_m.sweep.oracle_hits == 0,
            "{name}: oracle hits without classes are impossible"
        );
        assert_eq!(
            off_m.sweep.classes, 0,
            "{name}: sweep-off emits no sweep events"
        );
        if method == SupportMethod::SatPrune {
            // Everything is seeded, so the measured reduction is
            // deterministic: the oracle must discharge real calls.
            assert!(on_m.sweep.oracle_hits > 0, "{name}: the oracle never fired");
            assert!(
                on_m.sat_calls.total < off_m.sat_calls.total,
                "{name}: sweeping must measurably reduce SAT calls here"
            );
        }
    }
}

#[test]
fn swept_runs_are_jobs_invariant() {
    for unit in table1_units(TEST_SCALE).iter().take(6) {
        let problem = build_unit(unit);
        let opts = |jobs: usize| {
            EcoOptions::builder()
                .sweep(true)
                .jobs(jobs)
                .build()
                .expect("valid options")
        };
        let seq = run(&problem, opts(1), unit.name);
        let par = run(&problem, opts(4), unit.name);
        assert_outcomes_identical(&seq, &par, unit.name);
    }
}

const IMPLEMENTATION: &str = "
module adder (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire s1, c1, c2;
  // eco_target c1
  xor g1 (s1, a, b);
  xor g2 (sum, s1, cin);
  or  g3 (c1, a, b);
  and g4 (c2, s1, cin);
  or  g5 (cout, c1, c2);
endmodule
";

const SPECIFICATION: &str = "
module adder (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire s1, c1, c2;
  xor g1 (s1, a, b);
  xor g2 (sum, s1, cin);
  and g3 (c1, a, b);
  and g4 (c2, s1, cin);
  or  g5 (cout, c1, c2);
endmodule
";

#[test]
fn cli_sweep_flag_keeps_exit_code_and_output_bytes() {
    let dir = std::env::temp_dir().join(format!("eco_sweep_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let write = |name: &str, content: &str| {
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).expect("create");
        f.write_all(content.as_bytes()).expect("write");
        path.to_string_lossy().into_owned()
    };
    let f = write("F.v", IMPLEMENTATION);
    let g = write("G.v", SPECIFICATION);
    let mut variants = Vec::new();
    for sweep in [false, true] {
        let out = dir
            .join(if sweep { "on.v" } else { "off.v" })
            .to_string_lossy()
            .into_owned();
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_eco_patch"));
        cmd.args(["--impl", &f, "--spec", &g, "--out", &out]);
        if sweep {
            cmd.arg("--sweep");
        }
        let status = cmd.status().expect("binary runs");
        variants.push((status.code(), std::fs::read(&out).expect("output written")));
    }
    assert_eq!(variants[0].0, variants[1].0, "exit codes must match");
    assert_eq!(
        variants[0].1, variants[1].1,
        "patched netlists must be byte-identical with and without --sweep"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
