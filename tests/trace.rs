//! Trace-subsystem integration tests: JSONL export round-trips through
//! the parser, the replayed report agrees with `RunMetrics` v3, and the
//! Chrome exporter emits a balanced, loadable document.

use eco_patch::aig::Aig;
use eco_patch::core::json::parse_json;
use eco_patch::core::trace::{
    check_span_integrity, render_report, summarize_trace, ChromeTraceObserver, JsonlTraceObserver,
};
use eco_patch::core::{EcoEngine, EcoObserver, EcoOptions, EcoProblem, RunMetrics};
use std::sync::{Arc, Mutex};

fn multi_target_problem() -> EcoProblem {
    // impl y = (a&b) & (b&c); spec y = a ^ c; both ANDs are targets.
    let mut im = Aig::new();
    let (a, b, c) = (im.add_input(), im.add_input(), im.add_input());
    let t1 = im.and(a, b);
    let t2 = im.and(b, c);
    let y = im.and(t1, t2);
    im.add_output(y);
    let mut sp = Aig::new();
    let (a, _b, c) = (sp.add_input(), sp.add_input(), sp.add_input());
    let y = sp.xor(a, c);
    sp.add_output(y);
    EcoProblem::with_unit_weights(im, sp, vec![t1.node(), t2.node()]).expect("valid")
}

/// Runs the engine with both metrics and a JSONL trace attached and
/// returns (trace text, metrics).
fn traced_run(options: EcoOptions, problem: &EcoProblem) -> (String, RunMetrics) {
    let sink = Arc::new(Mutex::new(JsonlTraceObserver::new(Vec::new())));
    let engine = EcoEngine::new(options)
        .with_metrics()
        .with_shared_observer(sink.clone() as Arc<Mutex<dyn EcoObserver + Send>>);
    let outcome = engine.solve(&problem.snapshot()).expect("engine run");
    drop(engine);
    let observer = Arc::try_unwrap(sink)
        .unwrap_or_else(|_| panic!("engine dropped"))
        .into_inner()
        .expect("no poison");
    let bytes = observer.finish().expect("no io error on Vec sink");
    let text = String::from_utf8(bytes).expect("utf8 trace");
    (text, outcome.metrics.expect("with_metrics was set"))
}

#[test]
fn jsonl_trace_round_trips_and_passes_integrity() {
    let (text, _) = traced_run(
        EcoOptions::builder().build().expect("valid options"),
        &multi_target_problem(),
    );
    assert!(text.lines().count() > 8, "trace too short:\n{text}");
    let mut last_ts = 0u64;
    for line in text.lines() {
        let value = parse_json(line).expect("every trace line parses");
        let ts = value
            .get("ts_us")
            .and_then(|v| v.as_u64())
            .expect("ts_us on every record");
        assert!(ts >= last_ts, "timestamps must be monotone:\n{text}");
        last_ts = ts;
        value
            .get("event")
            .and_then(|v| v.as_str())
            .expect("event tag on every record");
    }
    check_span_integrity(&text).expect("spans are LIFO-balanced");
}

#[test]
fn report_phase_totals_agree_with_run_metrics_v3() {
    let (text, metrics) = traced_run(
        EcoOptions::builder().build().expect("valid options"),
        &multi_target_problem(),
    );
    let summary = summarize_trace(&text, 5).expect("summarize");

    // Phase totals: both paths truncate the same Duration to µs, so
    // they must agree exactly, in the same completion order.
    assert_eq!(summary.phases.len(), metrics.phases.len());
    for (got, want) in summary.phases.iter().zip(&metrics.phases) {
        assert_eq!(got.name, want.phase.name());
        assert_eq!(
            got.elapsed_us,
            u64::try_from(want.elapsed.as_micros()).unwrap()
        );
    }
    assert_eq!(
        summary.run_elapsed_us,
        Some(u64::try_from(metrics.elapsed.as_micros()).unwrap())
    );

    // Call/conflict totals agree exactly.
    assert_eq!(summary.sat_calls, metrics.sat_calls.total);
    assert_eq!(summary.sat_conflicts, metrics.sat_calls.conflicts);
    assert_eq!(summary.num_targets, Some(metrics.num_targets as u64));
    assert_eq!(summary.targets.len(), metrics.targets.len());
    for (got, want) in summary.targets.iter().zip(&metrics.targets) {
        assert_eq!(got.target_index, want.target_index as u64);
        assert_eq!(got.sat_calls, want.observed_sat_calls);
        assert_eq!(got.conflicts, want.conflicts);
    }

    // Solver time: the report sums per-call truncated µs, the metrics
    // truncate the summed Duration — the report can undercount by at
    // most 1µs per call.
    let metrics_time_us = u64::try_from(metrics.sat_calls.time.as_micros()).unwrap();
    assert!(summary.sat_time_us <= metrics_time_us);
    assert!(metrics_time_us - summary.sat_time_us <= summary.sat_calls);

    // The rendered report carries the same numbers.
    let rendered = render_report(&summary);
    for phase in &summary.phases {
        assert!(rendered.contains(&phase.name), "{rendered}");
    }
    assert!(
        rendered.contains(&format!("total={}", summary.sat_calls)),
        "{rendered}"
    );
}

#[test]
fn top_calls_are_sorted_and_bounded() {
    let (text, _) = traced_run(
        EcoOptions::builder().build().expect("valid options"),
        &multi_target_problem(),
    );
    let summary = summarize_trace(&text, 3).expect("summarize");
    assert!(summary.top_calls.len() <= 3);
    for pair in summary.top_calls.windows(2) {
        assert!(
            (pair[0].elapsed_us, pair[0].conflicts) >= (pair[1].elapsed_us, pair[1].conflicts),
            "top calls must be sorted most-expensive first"
        );
    }
}

#[test]
fn chrome_trace_is_balanced_and_loadable() {
    let sink = Arc::new(Mutex::new(ChromeTraceObserver::new(Vec::new())));
    let engine = EcoEngine::new(EcoOptions::builder().build().expect("valid options"))
        .with_shared_observer(sink.clone() as Arc<Mutex<dyn EcoObserver + Send>>);
    engine
        .solve(&multi_target_problem().snapshot())
        .expect("engine run");
    drop(engine);
    let observer = Arc::try_unwrap(sink)
        .unwrap_or_else(|_| panic!("engine dropped"))
        .into_inner()
        .expect("no poison");
    let bytes = observer.finish().expect("no io error on Vec sink");
    let text = String::from_utf8(bytes).expect("utf8 trace");

    let value = parse_json(&text).expect("chrome trace is one JSON document");
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut depth = 0i64;
    let mut complete = 0u64;
    for ev in events {
        match ev.get("ph").and_then(|v| v.as_str()).expect("ph field") {
            "B" => depth += 1,
            "E" => {
                depth -= 1;
                assert!(depth >= 0, "E without matching B");
            }
            "X" => complete += 1,
            "i" => {}
            other => panic!("unexpected phase type {other:?}"),
        }
    }
    assert_eq!(depth, 0, "every B span must close");
    assert!(complete > 0, "SAT calls must appear as X events");
}
