//! Trace-integrity property test: every `*Started` event matches a
//! `*Finished` in LIFO order — even when the governor trips mid-run or
//! a fault plan injects `Unknown` results into arbitrary SAT calls.

use eco_patch::benchgen::{inject_eco, random_aig, CircuitSpec, InjectSpec};
use eco_patch::core::trace::{check_span_integrity, summarize_trace, JsonlTraceObserver};
use eco_patch::core::{EcoEngine, EcoObserver, EcoOptions, EcoProblem, FaultPlan, SupportMethod};
use eco_testutil::{cases, Rng};
use std::sync::{Arc, Mutex};

fn random_fault_plan(rng: &mut Rng) -> Option<FaultPlan> {
    Some(match rng.below(6) {
        0 => return None,
        1 => FaultPlan::EveryNth(rng.below(5)),
        2 => FaultPlan::AtCalls((0..rng.range(1, 5)).map(|_| rng.range(1, 30)).collect()),
        3 => FaultPlan::Seeded {
            seed: rng.next_u64(),
            one_in: rng.range(1, 6),
        },
        4 => FaultPlan::CancelAt(rng.range(1, 20)),
        _ => FaultPlan::EveryNth(1),
    })
}

fn random_options(rng: &mut Rng) -> EcoOptions {
    let method = match rng.below(3) {
        0 => SupportMethod::AnalyzeFinal,
        1 => SupportMethod::MinimizeAssumptions,
        _ => SupportMethod::SatPrune,
    };
    // Structural fallback stays on so most runs complete and exercise
    // the full span tree; budgets/faults still trip mid-phase. No
    // timeout: wall-clock chaos is governor_prop's job.
    EcoOptions::builder()
        .method(method)
        .per_call_conflicts(if rng.bool() {
            Some(rng.below(50))
        } else {
            None
        })
        .global_conflicts(if rng.bool() {
            Some(rng.below(200))
        } else {
            None
        })
        .fault_plan(random_fault_plan(rng))
        .cegar_min(rng.bool())
        .structural_fallback(true)
        .degraded_retry(rng.bool())
        .verify(rng.bool())
        .build()
        .expect("valid options")
}

#[test]
fn spans_stay_lifo_under_faults_and_trips() {
    cases(48, |case, rng| {
        let spec = CircuitSpec {
            num_inputs: rng.range(3, 9) as usize,
            num_outputs: rng.range(1, 4) as usize,
            num_gates: rng.range(10, 60) as usize,
            seed: rng.below(1000),
        };
        let num_targets = rng.range(1, 4) as usize;
        let implementation = random_aig(&spec);
        let Some(injected) = inject_eco(
            &implementation,
            &InjectSpec {
                num_targets,
                seed: spec.seed,
            },
        ) else {
            return; // circuit too small for that many targets
        };
        let problem =
            EcoProblem::with_unit_weights(implementation, injected.specification, injected.targets)
                .expect("valid problem");
        let options = random_options(rng);
        let sink = Arc::new(Mutex::new(JsonlTraceObserver::new(Vec::new())));
        let engine = EcoEngine::new(options)
            .with_shared_observer(sink.clone() as Arc<Mutex<dyn EcoObserver + Send>>);
        let result = engine.solve(&problem.snapshot());
        drop(engine);
        let bytes = Arc::try_unwrap(sink)
            .unwrap_or_else(|_| panic!("engine dropped"))
            .into_inner()
            .expect("no poison")
            .finish()
            .expect("no io error on Vec sink");
        let text = String::from_utf8(bytes).expect("utf8 trace");

        // The property: whatever the run did — completed, degraded, or
        // errored out mid-phase — the trace is span-balanced.
        check_span_integrity(&text)
            .unwrap_or_else(|e| panic!("case {case}: {e} (run result: {result:?})\n{text}"));

        // And it replays: the summarizer accepts every trace it emits.
        let summary = summarize_trace(&text, 3)
            .unwrap_or_else(|e| panic!("case {case}: summarize failed: {e}"));
        if result.is_ok() {
            assert!(
                summary.run_elapsed_us.is_some(),
                "case {case}: successful runs must record run_finished"
            );
        }
    });
}
